// Package mrt reads and writes MRT TABLE_DUMP_V2 files (RFC 6396).
//
// The paper's methodology step (3) consumes "dumps of the active tables
// of the RIPE RIS route servers", which are distributed in exactly this
// format. The synthetic world writes its routing tables as MRT so the
// measurement pipeline ingests the same bytes a real study would.
//
// Supported records: PEER_INDEX_TABLE (subtype 1), RIB_IPV4_UNICAST
// (subtype 2) and RIB_IPV6_UNICAST (subtype 4). Peer entries always use
// 4-octet AS numbers.
package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"ripki/internal/bgp"
	"ripki/internal/netutil"
)

// MRT type and subtype codes.
const (
	TypeTableDumpV2 = 13

	SubtypePeerIndexTable = 1
	SubtypeRIBIPv4Unicast = 2
	SubtypeRIBIPv6Unicast = 4
)

// Peer describes one collector peer in the PEER_INDEX_TABLE.
type Peer struct {
	BGPID netip.Addr // IPv4 router ID
	Addr  netip.Addr // peer address (IPv4 or IPv6)
	ASN   uint32
}

// RIBEntry is one peer's path for a prefix.
type RIBEntry struct {
	PeerIndex  uint16
	Originated time.Time
	Attrs      bgp.PathAttrs
}

// RIBRecord is a full RIB record: all known paths for one prefix.
type RIBRecord struct {
	Sequence uint32
	Prefix   netip.Prefix
	Entries  []RIBEntry
}

// Writer emits a TABLE_DUMP_V2 stream: one PEER_INDEX_TABLE followed by
// RIB records.
type Writer struct {
	w         *bufio.Writer
	timestamp uint32
	wrotePeer bool
	seq       uint32
}

// NewWriter creates a writer stamping records with the given time.
func NewWriter(w io.Writer, stamp time.Time) *Writer {
	return &Writer{w: bufio.NewWriter(w), timestamp: uint32(stamp.Unix())}
}

func (w *Writer) header(subtype uint16, length int) {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], w.timestamp)
	binary.BigEndian.PutUint16(hdr[4:], TypeTableDumpV2)
	binary.BigEndian.PutUint16(hdr[6:], subtype)
	binary.BigEndian.PutUint32(hdr[8:], uint32(length))
	w.w.Write(hdr[:])
}

// WritePeerIndexTable writes the peer table; it must come first.
func (w *Writer) WritePeerIndexTable(collectorID netip.Addr, viewName string, peers []Peer) error {
	if w.wrotePeer {
		return errors.New("mrt: peer index table already written")
	}
	if !collectorID.Is4() {
		return fmt.Errorf("mrt: collector ID %v is not IPv4", collectorID)
	}
	if len(peers) > 65535 {
		return errors.New("mrt: too many peers")
	}
	var body []byte
	id := collectorID.As4()
	body = append(body, id[:]...)
	if len(viewName) > 65535 {
		return errors.New("mrt: view name too long")
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(viewName)))
	body = append(body, viewName...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(peers)))
	for _, p := range peers {
		if !p.BGPID.Is4() {
			return fmt.Errorf("mrt: peer BGP ID %v is not IPv4", p.BGPID)
		}
		// Peer type: bit 0 = IPv6 address, bit 1 = 4-octet AS (always).
		ptype := byte(0x02)
		if p.Addr.Is6() && !p.Addr.Is4() {
			ptype |= 0x01
		}
		body = append(body, ptype)
		bid := p.BGPID.As4()
		body = append(body, bid[:]...)
		body = append(body, p.Addr.AsSlice()...)
		body = binary.BigEndian.AppendUint32(body, p.ASN)
	}
	w.header(SubtypePeerIndexTable, len(body))
	if _, err := w.w.Write(body); err != nil {
		return err
	}
	w.wrotePeer = true
	return nil
}

// WriteRIB writes one RIB record; the sequence number is assigned
// automatically.
func (w *Writer) WriteRIB(prefix netip.Prefix, entries []RIBEntry) error {
	if !w.wrotePeer {
		return errors.New("mrt: peer index table must be written first")
	}
	cp, err := netutil.Canonical(prefix)
	if err != nil {
		return fmt.Errorf("mrt: %w", err)
	}
	subtype := uint16(SubtypeRIBIPv4Unicast)
	if cp.Addr().Is6() {
		subtype = SubtypeRIBIPv6Unicast
	}
	var body []byte
	body = binary.BigEndian.AppendUint32(body, w.seq)
	w.seq++
	body = append(body, byte(cp.Bits()))
	nbytes := (cp.Bits() + 7) / 8
	raw := cp.Addr().AsSlice()
	body = append(body, raw[:nbytes]...)
	if len(entries) > 65535 {
		return errors.New("mrt: too many RIB entries")
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(entries)))
	for _, e := range entries {
		body = binary.BigEndian.AppendUint16(body, e.PeerIndex)
		body = binary.BigEndian.AppendUint32(body, uint32(e.Originated.Unix()))
		attrs, err := bgp.EncodePathAttrs(e.Attrs)
		if err != nil {
			return fmt.Errorf("mrt: encoding attributes for %v: %w", cp, err)
		}
		if len(attrs) > 65535 {
			return errors.New("mrt: attributes too long")
		}
		body = binary.BigEndian.AppendUint16(body, uint16(len(attrs)))
		body = append(body, attrs...)
	}
	w.header(subtype, len(body))
	_, err = w.w.Write(body)
	return err
}

// Flush writes buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Record is one parsed MRT record: either *PeerIndexTable or *RIBRecord.
type Record interface{}

// PeerIndexTable is the parsed peer table.
type PeerIndexTable struct {
	CollectorID netip.Addr
	ViewName    string
	Peers       []Peer
}

// Reader parses a TABLE_DUMP_V2 stream.
type Reader struct {
	r     *bufio.Reader
	peers *PeerIndexTable
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// maxRecordLen guards against absurd length fields.
const maxRecordLen = 1 << 24

// Next returns the next record, or io.EOF at end of stream.
func (r *Reader) Next() (Record, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("mrt: truncated header: %w", err)
		}
		return nil, err
	}
	typ := binary.BigEndian.Uint16(hdr[4:6])
	subtype := binary.BigEndian.Uint16(hdr[6:8])
	length := binary.BigEndian.Uint32(hdr[8:12])
	if length > maxRecordLen {
		return nil, fmt.Errorf("mrt: implausible record length %d", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r.r, body); err != nil {
		return nil, fmt.Errorf("mrt: truncated record body: %w", err)
	}
	if typ != TypeTableDumpV2 {
		return nil, fmt.Errorf("mrt: unsupported MRT type %d", typ)
	}
	switch subtype {
	case SubtypePeerIndexTable:
		pit, err := parsePeerIndexTable(body)
		if err != nil {
			return nil, err
		}
		r.peers = pit
		return pit, nil
	case SubtypeRIBIPv4Unicast:
		return parseRIB(body, false)
	case SubtypeRIBIPv6Unicast:
		return parseRIB(body, true)
	default:
		return nil, fmt.Errorf("mrt: unsupported TABLE_DUMP_V2 subtype %d", subtype)
	}
}

// Peers returns the peer table seen so far (nil before it is read).
func (r *Reader) Peers() *PeerIndexTable { return r.peers }

func parsePeerIndexTable(body []byte) (*PeerIndexTable, error) {
	if len(body) < 8 {
		return nil, errors.New("mrt: peer index table too short")
	}
	var id [4]byte
	copy(id[:], body[:4])
	nameLen := int(binary.BigEndian.Uint16(body[4:6]))
	if len(body) < 6+nameLen+2 {
		return nil, errors.New("mrt: peer index table name overruns")
	}
	name := string(body[6 : 6+nameLen])
	rest := body[6+nameLen:]
	count := int(binary.BigEndian.Uint16(rest[:2]))
	rest = rest[2:]
	pit := &PeerIndexTable{CollectorID: netip.AddrFrom4(id), ViewName: name}
	for i := 0; i < count; i++ {
		if len(rest) < 1+4 {
			return nil, errors.New("mrt: truncated peer entry")
		}
		ptype := rest[0]
		if ptype&0x02 == 0 {
			return nil, errors.New("mrt: 2-octet AS peer entries unsupported")
		}
		var bid [4]byte
		copy(bid[:], rest[1:5])
		rest = rest[5:]
		alen := 4
		if ptype&0x01 != 0 {
			alen = 16
		}
		if len(rest) < alen+4 {
			return nil, errors.New("mrt: truncated peer address")
		}
		addr, _ := netip.AddrFromSlice(rest[:alen])
		asn := binary.BigEndian.Uint32(rest[alen : alen+4])
		rest = rest[alen+4:]
		pit.Peers = append(pit.Peers, Peer{BGPID: netip.AddrFrom4(bid), Addr: addr, ASN: asn})
	}
	if len(rest) != 0 {
		return nil, errors.New("mrt: trailing bytes after peer entries")
	}
	return pit, nil
}

func parseRIB(body []byte, v6 bool) (*RIBRecord, error) {
	if len(body) < 5 {
		return nil, errors.New("mrt: RIB record too short")
	}
	rec := &RIBRecord{Sequence: binary.BigEndian.Uint32(body[:4])}
	bits := int(body[4])
	famBytes, famBits := 4, 32
	if v6 {
		famBytes, famBits = 16, 128
	}
	if bits > famBits {
		return nil, fmt.Errorf("mrt: prefix length %d out of range", bits)
	}
	nbytes := (bits + 7) / 8
	if len(body) < 5+nbytes+2 {
		return nil, errors.New("mrt: RIB prefix overruns")
	}
	raw := make([]byte, famBytes)
	copy(raw, body[5:5+nbytes])
	addr, _ := netip.AddrFromSlice(raw)
	rec.Prefix = netip.PrefixFrom(addr, bits)
	if rec.Prefix.Masked() != rec.Prefix {
		return nil, fmt.Errorf("mrt: prefix %v has host bits set", rec.Prefix)
	}
	rest := body[5+nbytes:]
	count := int(binary.BigEndian.Uint16(rest[:2]))
	rest = rest[2:]
	for i := 0; i < count; i++ {
		if len(rest) < 8 {
			return nil, errors.New("mrt: truncated RIB entry")
		}
		e := RIBEntry{
			PeerIndex:  binary.BigEndian.Uint16(rest[:2]),
			Originated: time.Unix(int64(binary.BigEndian.Uint32(rest[2:6])), 0).UTC(),
		}
		alen := int(binary.BigEndian.Uint16(rest[6:8]))
		rest = rest[8:]
		if len(rest) < alen {
			return nil, errors.New("mrt: RIB entry attributes overrun")
		}
		attrs, err := bgp.ParsePathAttrs(rest[:alen])
		if err != nil {
			return nil, fmt.Errorf("mrt: entry %d of %v: %w", i, rec.Prefix, err)
		}
		e.Attrs = attrs
		rest = rest[alen:]
		rec.Entries = append(rec.Entries, e)
	}
	if len(rest) != 0 {
		return nil, errors.New("mrt: trailing bytes after RIB entries")
	}
	return rec, nil
}
