package bgp

import (
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"ripki/internal/netutil"
)

func TestCollectorSpeakerSession(t *testing.T) {
	var mu sync.Mutex
	var events []RouteEvent
	done := make(chan struct{}, 16)
	col := &Collector{
		ASN: 12654, // RIPE RIS
		ID:  netutil.MustAddr("193.0.4.28"),
		Handle: func(ev RouteEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
			done <- struct{}{}
		},
		Logf: t.Logf,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go col.Serve(ln)
	defer col.Close()

	sp, err := DialSpeaker(ln.Addr().String(), 3333, netutil.MustAddr("193.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	up := &Update{
		Origin:  OriginIGP,
		ASPath:  []Segment{{Type: SegmentSequence, ASNs: []uint32{3333, 64500}}},
		NextHop: netutil.MustAddr("193.0.0.1"),
		NLRI:    []netip.Prefix{netutil.MustPrefix("193.0.6.0/24"), netutil.MustPrefix("193.0.10.0/23")},
		MPReach: &MPReach{
			NextHop: netutil.MustAddr("2001:db8::1"),
			NLRI:    []netip.Prefix{netutil.MustPrefix("2001:67c:2e8::/48")},
		},
	}
	if err := sp.Send(up); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("timeout waiting for route events")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	for _, ev := range events {
		if ev.PeerAS != 3333 {
			t.Errorf("PeerAS = %d, want 3333", ev.PeerAS)
		}
		if ev.Withdraw {
			t.Errorf("unexpected withdraw: %+v", ev)
		}
		if origin, ok := OriginAS(ev.Path); !ok || origin != 64500 {
			t.Errorf("origin = %d,%v want 64500", origin, ok)
		}
	}
}

func TestCollectorWithdrawals(t *testing.T) {
	events := make(chan RouteEvent, 16)
	col := &Collector{
		ASN:    12654,
		ID:     netutil.MustAddr("193.0.4.28"),
		Handle: func(ev RouteEvent) { events <- ev },
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go col.Serve(ln)
	defer col.Close()

	sp, err := DialSpeaker(ln.Addr().String(), 64501, netutil.MustAddr("10.1.1.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if err := sp.Send(&Update{
		Withdrawn: []netip.Prefix{netutil.MustPrefix("203.0.113.0/24")},
		MPUnreach: []netip.Prefix{netutil.MustPrefix("2001:db8::/32")},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case ev := <-events:
			if !ev.Withdraw {
				t.Errorf("expected withdraw, got %+v", ev)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestEventsFlattening(t *testing.T) {
	up := &Update{
		Withdrawn: []netip.Prefix{netutil.MustPrefix("1.0.0.0/8")},
		ASPath:    []Segment{{Type: SegmentSequence, ASNs: []uint32{9}}},
		NextHop:   netutil.MustAddr("10.0.0.1"),
		NLRI:      []netip.Prefix{netutil.MustPrefix("2.0.0.0/8")},
	}
	evs := Events(7, netutil.MustAddr("10.0.0.9"), up)
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if !evs[0].Withdraw || evs[1].Withdraw {
		t.Error("withdraw ordering wrong")
	}
}
