// Package bgp implements the subset of BGP-4 (RFC 4271) that a route
// collector needs: message framing, OPEN negotiation with the 4-octet
// AS capability (RFC 6793), UPDATE encoding/decoding with the path
// attributes relevant to origin extraction (ORIGIN, AS_PATH, NEXT_HOP,
// and MP-BGP reach/unreach for IPv6, RFC 4760), and passive/active
// session endpoints.
//
// The paper derives each route's origin AS as "the right most ASN in
// the AS path" and excludes AS_SET routes; OriginAS implements exactly
// that rule.
package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"

	"ripki/internal/netutil"
)

// Message type codes (RFC 4271 §4.1).
const (
	TypeOpen         = 1
	TypeUpdate       = 2
	TypeNotification = 3
	TypeKeepalive    = 4
)

// Path-attribute type codes.
const (
	AttrOrigin        = 1
	AttrASPath        = 2
	AttrNextHop       = 3
	AttrMultiExitDisc = 4
	AttrLocalPref     = 5
	AttrMPReachNLRI   = 14
	AttrMPUnreachNLRI = 15
)

// ORIGIN attribute values.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// AS_PATH segment types.
const (
	SegmentSet      = 1
	SegmentSequence = 2
)

// AFI/SAFI for MP-BGP.
const (
	AFIIPv4     = 1
	AFIIPv6     = 2
	SAFIUnicast = 1
)

// ASTrans is the 2-octet placeholder AS (RFC 6793).
const ASTrans = 23456

const (
	markerLen  = 16
	headerLen  = markerLen + 3
	maxMsgLen  = 4096
	minMsgLen  = headerLen
	bgpVersion = 4
)

// Message is implemented by the four BGP message kinds.
type Message interface {
	// Type returns the RFC 4271 message type code.
	Type() uint8
	// body appends the message body (after the 19-byte header).
	body(dst []byte) ([]byte, error)
}

// Segment is one AS_PATH segment.
type Segment struct {
	Type uint8 // SegmentSet or SegmentSequence
	ASNs []uint32
}

// Open is the session-establishment message. This implementation always
// advertises the 4-octet AS capability and requires it from peers, so
// AS_PATH segments are uniformly 4 bytes per ASN.
type Open struct {
	ASN      uint32
	HoldTime uint16
	ID       netip.Addr // router ID; must be IPv4
}

func (m *Open) Type() uint8 { return TypeOpen }

func (m *Open) body(dst []byte) ([]byte, error) {
	if !m.ID.Is4() {
		return nil, fmt.Errorf("bgp: router ID %v is not IPv4", m.ID)
	}
	dst = append(dst, bgpVersion)
	as2 := uint16(ASTrans)
	if m.ASN < 65536 {
		as2 = uint16(m.ASN)
	}
	dst = binary.BigEndian.AppendUint16(dst, as2)
	dst = binary.BigEndian.AppendUint16(dst, m.HoldTime)
	id := m.ID.As4()
	dst = append(dst, id[:]...)
	// One optional parameter: capabilities (type 2), containing the
	// 4-octet AS capability (code 65, RFC 6793).
	cap4 := []byte{65, 4, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(cap4[2:], m.ASN)
	param := append([]byte{2, byte(len(cap4))}, cap4...)
	dst = append(dst, byte(len(param)))
	dst = append(dst, param...)
	return dst, nil
}

// Keepalive is the empty liveness message.
type Keepalive struct{}

func (m *Keepalive) Type() uint8                     { return TypeKeepalive }
func (m *Keepalive) body(dst []byte) ([]byte, error) { return dst, nil }

// Notification reports a fatal session error.
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

func (m *Notification) Type() uint8 { return TypeNotification }

func (m *Notification) body(dst []byte) ([]byte, error) {
	dst = append(dst, m.Code, m.Subcode)
	return append(dst, m.Data...), nil
}

func (m *Notification) Error() string {
	return fmt.Sprintf("bgp: notification code %d subcode %d", m.Code, m.Subcode)
}

// MPReach carries IPv6 reachability (RFC 4760).
type MPReach struct {
	NextHop netip.Addr
	NLRI    []netip.Prefix
}

// Update announces and withdraws routes. IPv4 routes ride the classic
// fields; IPv6 routes ride MPReach/MPUnreach.
type Update struct {
	// Withdrawn lists IPv4 prefixes no longer reachable.
	Withdrawn []netip.Prefix
	// Origin is the ORIGIN attribute (OriginIGP unless set).
	Origin uint8
	// ASPath is the AS_PATH attribute as 4-octet segments.
	ASPath []Segment
	// NextHop is the IPv4 next hop; required when NLRI is non-empty.
	NextHop netip.Addr
	// NLRI lists announced IPv4 prefixes.
	NLRI []netip.Prefix
	// MPReach, if non-nil, announces IPv6 prefixes.
	MPReach *MPReach
	// MPUnreach lists withdrawn IPv6 prefixes.
	MPUnreach []netip.Prefix
}

func (m *Update) Type() uint8 { return TypeUpdate }

func appendNLRI(dst []byte, ps []netip.Prefix) ([]byte, error) {
	for _, p := range ps {
		cp, err := netutil.Canonical(p)
		if err != nil {
			return nil, fmt.Errorf("bgp: %w", err)
		}
		dst = append(dst, byte(cp.Bits()))
		nbytes := (cp.Bits() + 7) / 8
		raw := cp.Addr().AsSlice()
		dst = append(dst, raw[:nbytes]...)
	}
	return dst, nil
}

func parseNLRI(buf []byte, v6 bool) ([]netip.Prefix, error) {
	var out []netip.Prefix
	famBytes, famBits := 4, 32
	if v6 {
		famBytes, famBits = 16, 128
	}
	for len(buf) > 0 {
		bits := int(buf[0])
		buf = buf[1:]
		if bits > famBits {
			return nil, fmt.Errorf("bgp: NLRI prefix length %d exceeds family maximum %d", bits, famBits)
		}
		nbytes := (bits + 7) / 8
		if len(buf) < nbytes {
			return nil, fmt.Errorf("bgp: truncated NLRI (need %d bytes, have %d)", nbytes, len(buf))
		}
		raw := make([]byte, famBytes)
		copy(raw, buf[:nbytes])
		buf = buf[nbytes:]
		addr, _ := netip.AddrFromSlice(raw)
		p := netip.PrefixFrom(addr, bits)
		if p.Masked() != p {
			return nil, fmt.Errorf("bgp: NLRI %v has host bits set", p)
		}
		out = append(out, p)
	}
	return out, nil
}

// attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtended   = 0x10
)

func appendAttr(dst []byte, flags, typ uint8, body []byte) []byte {
	if len(body) > 255 {
		flags |= flagExtended
	}
	dst = append(dst, flags, typ)
	if flags&flagExtended != 0 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(body)))
	} else {
		dst = append(dst, byte(len(body)))
	}
	return append(dst, body...)
}

func (m *Update) body(dst []byte) ([]byte, error) {
	// Withdrawn routes.
	wd, err := appendNLRI(nil, m.Withdrawn)
	if err != nil {
		return nil, err
	}
	if len(wd) > 65535 {
		return nil, errors.New("bgp: withdrawn routes overflow")
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(wd)))
	dst = append(dst, wd...)

	// Path attributes.
	var attrs []byte
	hasRoutes := len(m.NLRI) > 0 || (m.MPReach != nil && len(m.MPReach.NLRI) > 0)
	if hasRoutes {
		attrs = appendAttr(attrs, flagTransitive, AttrOrigin, []byte{m.Origin})
		var pathBody []byte
		for _, seg := range m.ASPath {
			if len(seg.ASNs) > 255 {
				return nil, errors.New("bgp: AS_PATH segment too long")
			}
			pathBody = append(pathBody, seg.Type, byte(len(seg.ASNs)))
			for _, asn := range seg.ASNs {
				pathBody = binary.BigEndian.AppendUint32(pathBody, asn)
			}
		}
		attrs = appendAttr(attrs, flagTransitive, AttrASPath, pathBody)
	}
	if len(m.NLRI) > 0 {
		if !m.NextHop.Is4() {
			return nil, fmt.Errorf("bgp: IPv4 NLRI requires an IPv4 next hop, got %v", m.NextHop)
		}
		nh := m.NextHop.As4()
		attrs = appendAttr(attrs, flagTransitive, AttrNextHop, nh[:])
	}
	if m.MPReach != nil && len(m.MPReach.NLRI) > 0 {
		if !m.MPReach.NextHop.Is6() || m.MPReach.NextHop.Is4() {
			return nil, fmt.Errorf("bgp: MP_REACH next hop %v is not IPv6", m.MPReach.NextHop)
		}
		var b []byte
		b = binary.BigEndian.AppendUint16(b, AFIIPv6)
		b = append(b, SAFIUnicast)
		nh := m.MPReach.NextHop.As16()
		b = append(b, 16)
		b = append(b, nh[:]...)
		b = append(b, 0) // reserved
		if b, err = appendNLRI(b, m.MPReach.NLRI); err != nil {
			return nil, err
		}
		attrs = appendAttr(attrs, flagOptional, AttrMPReachNLRI, b)
	}
	if len(m.MPUnreach) > 0 {
		var b []byte
		b = binary.BigEndian.AppendUint16(b, AFIIPv6)
		b = append(b, SAFIUnicast)
		if b, err = appendNLRI(b, m.MPUnreach); err != nil {
			return nil, err
		}
		attrs = appendAttr(attrs, flagOptional, AttrMPUnreachNLRI, b)
	}
	if len(attrs) > 65535 {
		return nil, errors.New("bgp: path attributes overflow")
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(attrs)))
	dst = append(dst, attrs...)

	// NLRI.
	if dst, err = appendNLRI(dst, m.NLRI); err != nil {
		return nil, err
	}
	return dst, nil
}

// Encode serialises msg with header and marker, appending to dst.
func Encode(dst []byte, msg Message) ([]byte, error) {
	start := len(dst)
	for i := 0; i < markerLen; i++ {
		dst = append(dst, 0xff)
	}
	dst = append(dst, 0, 0, msg.Type()) // length placeholder
	var err error
	dst, err = msg.body(dst)
	if err != nil {
		return nil, err
	}
	total := len(dst) - start
	if total > maxMsgLen {
		return nil, fmt.Errorf("bgp: message length %d exceeds maximum %d", total, maxMsgLen)
	}
	binary.BigEndian.PutUint16(dst[start+markerLen:], uint16(total))
	return dst, nil
}

// WriteMessage encodes and writes one message.
func WriteMessage(w io.Writer, msg Message) error {
	buf, err := Encode(nil, msg)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadMessage reads and decodes one message from r.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	for _, b := range hdr[:markerLen] {
		if b != 0xff {
			return nil, errors.New("bgp: connection not synchronised (bad marker)")
		}
	}
	length := int(binary.BigEndian.Uint16(hdr[markerLen : markerLen+2]))
	typ := hdr[markerLen+2]
	if length < minMsgLen || length > maxMsgLen {
		return nil, fmt.Errorf("bgp: bad message length %d", length)
	}
	body := make([]byte, length-headerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("bgp: reading body: %w", err)
	}
	return decodeBody(typ, body)
}

// Decode parses one message from buf and returns the bytes consumed.
func Decode(buf []byte) (Message, int, error) {
	if len(buf) < headerLen {
		return nil, 0, errors.New("bgp: short header")
	}
	for _, b := range buf[:markerLen] {
		if b != 0xff {
			return nil, 0, errors.New("bgp: bad marker")
		}
	}
	length := int(binary.BigEndian.Uint16(buf[markerLen : markerLen+2]))
	typ := buf[markerLen+2]
	if length < minMsgLen || length > maxMsgLen {
		return nil, 0, fmt.Errorf("bgp: bad message length %d", length)
	}
	if len(buf) < length {
		return nil, 0, fmt.Errorf("bgp: truncated message (have %d, need %d)", len(buf), length)
	}
	msg, err := decodeBody(typ, buf[headerLen:length])
	if err != nil {
		return nil, 0, err
	}
	return msg, length, nil
}

func decodeBody(typ uint8, body []byte) (Message, error) {
	switch typ {
	case TypeOpen:
		return decodeOpen(body)
	case TypeUpdate:
		return decodeUpdate(body)
	case TypeKeepalive:
		if len(body) != 0 {
			return nil, errors.New("bgp: keepalive with body")
		}
		return &Keepalive{}, nil
	case TypeNotification:
		if len(body) < 2 {
			return nil, errors.New("bgp: notification too short")
		}
		return &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
	default:
		return nil, fmt.Errorf("bgp: unknown message type %d", typ)
	}
}

func decodeOpen(body []byte) (*Open, error) {
	if len(body) < 10 {
		return nil, errors.New("bgp: OPEN too short")
	}
	if body[0] != bgpVersion {
		return nil, fmt.Errorf("bgp: unsupported version %d", body[0])
	}
	as2 := binary.BigEndian.Uint16(body[1:3])
	hold := binary.BigEndian.Uint16(body[3:5])
	var id4 [4]byte
	copy(id4[:], body[5:9])
	optLen := int(body[9])
	opts := body[10:]
	if len(opts) != optLen {
		return nil, fmt.Errorf("bgp: OPEN optional parameter length %d does not match body %d", optLen, len(opts))
	}
	open := &Open{ASN: uint32(as2), HoldTime: hold, ID: netip.AddrFrom4(id4)}
	// Scan for the 4-octet AS capability.
	for len(opts) >= 2 {
		ptype, plen := opts[0], int(opts[1])
		if len(opts) < 2+plen {
			return nil, errors.New("bgp: OPEN optional parameter overruns")
		}
		val := opts[2 : 2+plen]
		opts = opts[2+plen:]
		if ptype != 2 {
			continue // not capabilities
		}
		for len(val) >= 2 {
			code, clen := val[0], int(val[1])
			if len(val) < 2+clen {
				return nil, errors.New("bgp: capability overruns")
			}
			if code == 65 && clen == 4 {
				open.ASN = binary.BigEndian.Uint32(val[2:6])
			}
			val = val[2+clen:]
		}
	}
	if len(opts) != 0 {
		return nil, errors.New("bgp: trailing bytes in OPEN optional parameters")
	}
	if open.ASN == uint32(ASTrans) && as2 == ASTrans {
		return nil, errors.New("bgp: peer did not advertise the 4-octet AS capability")
	}
	return open, nil
}

func decodeUpdate(body []byte) (*Update, error) {
	if len(body) < 4 {
		return nil, errors.New("bgp: UPDATE too short")
	}
	wdLen := int(binary.BigEndian.Uint16(body[:2]))
	if len(body) < 2+wdLen+2 {
		return nil, errors.New("bgp: UPDATE withdrawn routes overrun")
	}
	up := &Update{}
	var err error
	if up.Withdrawn, err = parseNLRI(body[2:2+wdLen], false); err != nil {
		return nil, err
	}
	rest := body[2+wdLen:]
	attrLen := int(binary.BigEndian.Uint16(rest[:2]))
	if len(rest) < 2+attrLen {
		return nil, errors.New("bgp: UPDATE attributes overrun")
	}
	attrs := rest[2 : 2+attrLen]
	nlri := rest[2+attrLen:]
	if up.NLRI, err = parseNLRI(nlri, false); err != nil {
		return nil, err
	}
	if err := parseAttrs(attrs, up); err != nil {
		return nil, err
	}
	return up, nil
}

// parseAttrs decodes a path-attribute block into up.
func parseAttrs(attrs []byte, up *Update) error {
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return errors.New("bgp: truncated attribute header")
		}
		flags, typ := attrs[0], attrs[1]
		var alen, hdr int
		if flags&flagExtended != 0 {
			if len(attrs) < 4 {
				return errors.New("bgp: truncated extended attribute header")
			}
			alen, hdr = int(binary.BigEndian.Uint16(attrs[2:4])), 4
		} else {
			alen, hdr = int(attrs[2]), 3
		}
		if len(attrs) < hdr+alen {
			return errors.New("bgp: attribute overruns message")
		}
		val := attrs[hdr : hdr+alen]
		attrs = attrs[hdr+alen:]
		switch typ {
		case AttrOrigin:
			if len(val) != 1 {
				return errors.New("bgp: bad ORIGIN length")
			}
			up.Origin = val[0]
		case AttrASPath:
			for len(val) > 0 {
				if len(val) < 2 {
					return errors.New("bgp: truncated AS_PATH segment")
				}
				styp, n := val[0], int(val[1])
				if styp != SegmentSet && styp != SegmentSequence {
					return fmt.Errorf("bgp: unknown AS_PATH segment type %d", styp)
				}
				if len(val) < 2+4*n {
					return errors.New("bgp: AS_PATH segment overruns")
				}
				seg := Segment{Type: styp, ASNs: make([]uint32, n)}
				for i := 0; i < n; i++ {
					seg.ASNs[i] = binary.BigEndian.Uint32(val[2+4*i:])
				}
				up.ASPath = append(up.ASPath, seg)
				val = val[2+4*n:]
			}
		case AttrNextHop:
			if len(val) != 4 {
				return errors.New("bgp: bad NEXT_HOP length")
			}
			var a [4]byte
			copy(a[:], val)
			up.NextHop = netip.AddrFrom4(a)
		case AttrMPReachNLRI:
			if len(val) < 5 {
				return errors.New("bgp: MP_REACH too short")
			}
			afi := binary.BigEndian.Uint16(val[:2])
			safi := val[2]
			nhLen := int(val[3])
			if afi != AFIIPv6 || safi != SAFIUnicast {
				return fmt.Errorf("bgp: unsupported AFI/SAFI %d/%d", afi, safi)
			}
			if len(val) < 4+nhLen+1 {
				return errors.New("bgp: MP_REACH next hop overruns")
			}
			if nhLen != 16 {
				return fmt.Errorf("bgp: MP_REACH next hop length %d unsupported", nhLen)
			}
			var nh [16]byte
			copy(nh[:], val[4:20])
			nlri6, err := parseNLRI(val[4+nhLen+1:], true)
			if err != nil {
				return err
			}
			up.MPReach = &MPReach{NextHop: netip.AddrFrom16(nh), NLRI: nlri6}
		case AttrMPUnreachNLRI:
			if len(val) < 3 {
				return errors.New("bgp: MP_UNREACH too short")
			}
			afi := binary.BigEndian.Uint16(val[:2])
			safi := val[2]
			if afi != AFIIPv6 || safi != SAFIUnicast {
				return fmt.Errorf("bgp: unsupported AFI/SAFI %d/%d", afi, safi)
			}
			wd6, err := parseNLRI(val[3:], true)
			if err != nil {
				return err
			}
			up.MPUnreach = wd6
		default:
			// Unknown attributes are tolerated (transitive semantics are
			// out of scope for a collector).
		}
	}
	return nil
}

// OriginAS returns the origin AS of a path: the last ASN of the final
// AS_SEQUENCE segment. If the path ends in an AS_SET the origin is
// ambiguous and ok is false — such routes are excluded from the study,
// matching the paper ("entries with an AS_SET are excluded ... which is
// why the function is deprecated with the deployment of RPKI").
func OriginAS(path []Segment) (asn uint32, ok bool) {
	if len(path) == 0 {
		return 0, false
	}
	last := path[len(path)-1]
	if last.Type != SegmentSequence || len(last.ASNs) == 0 {
		return 0, false
	}
	return last.ASNs[len(last.ASNs)-1], true
}
