package bgp

import (
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

// Property: any UPDATE whose fields are structurally valid round-trips
// through Encode → Decode.
func TestQuickUpdateRoundTrip(t *testing.T) {
	f := func(nlriRaw [][4]byte, bitsRaw []uint8, pathRaw []uint32, origin uint8, nh [4]byte) bool {
		if len(nlriRaw) == 0 || len(nlriRaw) > 30 {
			return true
		}
		up := &Update{Origin: origin % 3, NextHop: netip.AddrFrom4(nh)}
		for i, a := range nlriRaw {
			bits := 0
			if i < len(bitsRaw) {
				bits = int(bitsRaw[i]) % 33
			}
			up.NLRI = append(up.NLRI, netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked())
		}
		if len(pathRaw) == 0 {
			pathRaw = []uint32{64500}
		}
		if len(pathRaw) > 64 {
			pathRaw = pathRaw[:64]
		}
		up.ASPath = []Segment{{Type: SegmentSequence, ASNs: pathRaw}}
		wire, err := Encode(nil, up)
		if err != nil {
			// Oversized messages may legitimately fail; nothing to check.
			return true
		}
		got, n, err := Decode(wire)
		if err != nil || n != len(wire) {
			return false
		}
		u := got.(*Update)
		return reflect.DeepEqual(u.NLRI, up.NLRI) &&
			reflect.DeepEqual(u.ASPath, up.ASPath) &&
			u.NextHop == up.NextHop && u.Origin == up.Origin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: OPEN round-trips for every ASN and hold time.
func TestQuickOpenRoundTrip(t *testing.T) {
	f := func(asn uint32, hold uint16, id [4]byte) bool {
		in := &Open{ASN: asn, HoldTime: hold, ID: netip.AddrFrom4(id)}
		wire, err := Encode(nil, in)
		if err != nil {
			return false
		}
		got, _, err := Decode(wire)
		if err != nil {
			return false
		}
		o := got.(*Open)
		return o.ASN == asn && o.HoldTime == hold && o.ID == in.ID
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: path attributes round-trip through the MRT-facing codec.
func TestQuickPathAttrsRoundTrip(t *testing.T) {
	f := func(origin uint8, asns []uint32, nh4 [4]byte, useV6 bool, nh16 [16]byte) bool {
		if len(asns) == 0 {
			asns = []uint32{1}
		}
		if len(asns) > 128 {
			asns = asns[:128]
		}
		a := PathAttrs{Origin: origin % 3, ASPath: []Segment{{Type: SegmentSequence, ASNs: asns}}}
		if useV6 {
			addr := netip.AddrFrom16(nh16)
			if addr.Is4In6() {
				return true // 4-in-6 is rejected by design
			}
			a.NextHop = addr
		} else {
			a.NextHop = netip.AddrFrom4(nh4)
		}
		wire, err := EncodePathAttrs(a)
		if err != nil {
			return false
		}
		got, err := ParsePathAttrs(wire)
		if err != nil {
			return false
		}
		return got.Origin == a.Origin && reflect.DeepEqual(got.ASPath, a.ASPath) && got.NextHop == a.NextHop
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
