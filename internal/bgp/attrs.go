package bgp

import (
	"errors"
	"fmt"
	"net/netip"
)

// PathAttrs is the attribute set attached to one RIB entry: the subset
// of UPDATE attributes that MRT TABLE_DUMP_V2 RIB records carry.
type PathAttrs struct {
	Origin  uint8
	ASPath  []Segment
	NextHop netip.Addr // IPv4 → NEXT_HOP, IPv6 → MP_REACH next hop
}

// EncodePathAttrs renders a path-attribute block as it appears inside
// MRT RIB entries (and inside UPDATE messages).
func EncodePathAttrs(a PathAttrs) ([]byte, error) {
	var attrs []byte
	attrs = appendAttr(attrs, flagTransitive, AttrOrigin, []byte{a.Origin})
	var pathBody []byte
	for _, seg := range a.ASPath {
		if len(seg.ASNs) > 255 {
			return nil, errors.New("bgp: AS_PATH segment too long")
		}
		pathBody = append(pathBody, seg.Type, byte(len(seg.ASNs)))
		for _, asn := range seg.ASNs {
			pathBody = append(pathBody, byte(asn>>24), byte(asn>>16), byte(asn>>8), byte(asn))
		}
	}
	attrs = appendAttr(attrs, flagTransitive, AttrASPath, pathBody)
	switch {
	case a.NextHop.Is4():
		nh := a.NextHop.As4()
		attrs = appendAttr(attrs, flagTransitive, AttrNextHop, nh[:])
	case a.NextHop.Is6():
		// Reuse the UPDATE MP_REACH layout with an empty NLRI so one
		// parser serves both: AFI(2), SAFI(1), next-hop length(1),
		// next hop, reserved(1).
		var b []byte
		b = append(b, 0, AFIIPv6, SAFIUnicast, 16)
		nh := a.NextHop.As16()
		b = append(b, nh[:]...)
		b = append(b, 0) // reserved
		attrs = appendAttr(attrs, flagOptional, AttrMPReachNLRI, b)
	case a.NextHop.IsValid():
		return nil, fmt.Errorf("bgp: unsupported next hop %v", a.NextHop)
	}
	return attrs, nil
}

// ParsePathAttrs decodes a path-attribute block produced by
// EncodePathAttrs (or extracted from an UPDATE).
func ParsePathAttrs(buf []byte) (PathAttrs, error) {
	var up Update
	if err := parseAttrs(buf, &up); err != nil {
		return PathAttrs{}, err
	}
	a := PathAttrs{Origin: up.Origin, ASPath: up.ASPath, NextHop: up.NextHop}
	if up.MPReach != nil {
		a.NextHop = up.MPReach.NextHop
	}
	return a, nil
}
