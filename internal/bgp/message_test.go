package bgp

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"

	"ripki/internal/netutil"
)

func TestOpenRoundTrip(t *testing.T) {
	m := &Open{ASN: 196615, HoldTime: 90, ID: netutil.MustAddr("10.0.0.1")}
	wire, err := Encode(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Errorf("consumed %d of %d", n, len(wire))
	}
	o, ok := got.(*Open)
	if !ok {
		t.Fatalf("got %T", got)
	}
	if o.ASN != 196615 || o.HoldTime != 90 || o.ID != netutil.MustAddr("10.0.0.1") {
		t.Errorf("round trip mismatch: %+v", o)
	}
}

func TestOpenSmallASN(t *testing.T) {
	m := &Open{ASN: 3333, HoldTime: 180, ID: netutil.MustAddr("192.0.2.1")}
	wire, _ := Encode(nil, m)
	got, _, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*Open).ASN != 3333 {
		t.Errorf("ASN = %d", got.(*Open).ASN)
	}
}

func TestOpenRejectsNonIPv4ID(t *testing.T) {
	if _, err := Encode(nil, &Open{ASN: 1, ID: netutil.MustAddr("2001:db8::1")}); err == nil {
		t.Error("IPv6 router ID accepted")
	}
}

func TestKeepaliveNotificationRoundTrip(t *testing.T) {
	wire, _ := Encode(nil, &Keepalive{})
	if _, _, err := Decode(wire); err != nil {
		t.Fatal(err)
	}
	wire, _ = Encode(nil, &Notification{Code: 6, Subcode: 2, Data: []byte("bye")})
	got, _, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	n := got.(*Notification)
	if n.Code != 6 || n.Subcode != 2 || string(n.Data) != "bye" {
		t.Errorf("notification mismatch: %+v", n)
	}
}

func testUpdate() *Update {
	return &Update{
		Withdrawn: []netip.Prefix{netutil.MustPrefix("198.51.100.0/24")},
		Origin:    OriginIGP,
		ASPath: []Segment{
			{Type: SegmentSequence, ASNs: []uint32{64500, 3333, 196615}},
		},
		NextHop: netutil.MustAddr("10.0.0.2"),
		NLRI: []netip.Prefix{
			netutil.MustPrefix("193.0.6.0/24"),
			netutil.MustPrefix("185.42.0.0/16"),
			netutil.MustPrefix("8.0.0.0/8"),
			netutil.MustPrefix("192.0.2.128/25"),
		},
		MPReach: &MPReach{
			NextHop: netutil.MustAddr("2001:db8::1"),
			NLRI: []netip.Prefix{
				netutil.MustPrefix("2001:db8:1000::/36"),
				netutil.MustPrefix("2a00::/12"),
			},
		},
		MPUnreach: []netip.Prefix{netutil.MustPrefix("2001:db8:dead::/48")},
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	m := testUpdate()
	wire, err := Encode(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := got.(*Update)
	if !ok {
		t.Fatalf("got %T", got)
	}
	if !reflect.DeepEqual(u.Withdrawn, m.Withdrawn) {
		t.Errorf("Withdrawn: %v vs %v", u.Withdrawn, m.Withdrawn)
	}
	if !reflect.DeepEqual(u.ASPath, m.ASPath) {
		t.Errorf("ASPath: %v vs %v", u.ASPath, m.ASPath)
	}
	if u.NextHop != m.NextHop {
		t.Errorf("NextHop: %v vs %v", u.NextHop, m.NextHop)
	}
	if !reflect.DeepEqual(u.NLRI, m.NLRI) {
		t.Errorf("NLRI: %v vs %v", u.NLRI, m.NLRI)
	}
	if u.MPReach == nil || u.MPReach.NextHop != m.MPReach.NextHop || !reflect.DeepEqual(u.MPReach.NLRI, m.MPReach.NLRI) {
		t.Errorf("MPReach: %+v vs %+v", u.MPReach, m.MPReach)
	}
	if !reflect.DeepEqual(u.MPUnreach, m.MPUnreach) {
		t.Errorf("MPUnreach: %v vs %v", u.MPUnreach, m.MPUnreach)
	}
}

func TestUpdateWithASSet(t *testing.T) {
	m := &Update{
		Origin: OriginIncomplete,
		ASPath: []Segment{
			{Type: SegmentSequence, ASNs: []uint32{64500}},
			{Type: SegmentSet, ASNs: []uint32{3333, 3334}},
		},
		NextHop: netutil.MustAddr("10.0.0.2"),
		NLRI:    []netip.Prefix{netutil.MustPrefix("10.0.0.0/8")},
	}
	wire, err := Encode(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	u := got.(*Update)
	if len(u.ASPath) != 2 || u.ASPath[1].Type != SegmentSet {
		t.Errorf("AS_SET lost: %+v", u.ASPath)
	}
	if _, ok := OriginAS(u.ASPath); ok {
		t.Error("OriginAS accepted an AS_SET-terminated path")
	}
}

func TestOriginAS(t *testing.T) {
	cases := []struct {
		path []Segment
		want uint32
		ok   bool
	}{
		{nil, 0, false},
		{[]Segment{{Type: SegmentSequence, ASNs: []uint32{1, 2, 3}}}, 3, true},
		{[]Segment{{Type: SegmentSequence, ASNs: []uint32{1}}, {Type: SegmentSequence, ASNs: []uint32{9}}}, 9, true},
		{[]Segment{{Type: SegmentSet, ASNs: []uint32{1, 2}}}, 0, false},
		{[]Segment{{Type: SegmentSequence, ASNs: nil}}, 0, false},
	}
	for i, c := range cases {
		got, ok := OriginAS(c.path)
		if got != c.want || ok != c.ok {
			t.Errorf("case %d: OriginAS = %d,%v want %d,%v", i, got, ok, c.want, c.ok)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	wire, _ := Encode(nil, testUpdate())
	// Truncations.
	for i := 0; i < len(wire); i += 3 {
		if _, _, err := Decode(wire[:i]); err == nil {
			t.Errorf("accepted truncation to %d bytes", i)
		}
	}
	// Bad marker.
	bad := append([]byte(nil), wire...)
	bad[0] = 0
	if _, _, err := Decode(bad); err == nil {
		t.Error("accepted bad marker")
	}
	// Bad type.
	bad = append([]byte(nil), wire...)
	bad[18] = 9
	if _, _, err := Decode(bad); err == nil {
		t.Error("accepted unknown message type")
	}
	// Length below minimum.
	bad = append([]byte(nil), wire...)
	bad[16], bad[17] = 0, 5
	if _, _, err := Decode(bad); err == nil {
		t.Error("accepted undersized length")
	}
}

func TestDecodeFuzzNoPanic(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	wire, _ := Encode(nil, testUpdate())
	for i := 0; i < 5000; i++ {
		mut := append([]byte(nil), wire...)
		for j := 0; j < 1+rnd.Intn(6); j++ {
			mut[rnd.Intn(len(mut))] ^= byte(1 << rnd.Intn(8))
		}
		Decode(mut) // must not panic
	}
}

func TestEncodeRejectsBadUpdate(t *testing.T) {
	// NLRI without IPv4 next hop.
	if _, err := Encode(nil, &Update{NLRI: []netip.Prefix{netutil.MustPrefix("10.0.0.0/8")}}); err == nil {
		t.Error("NLRI without next hop accepted")
	}
	// MPReach with IPv4 next hop.
	if _, err := Encode(nil, &Update{MPReach: &MPReach{NextHop: netutil.MustAddr("10.0.0.1"), NLRI: []netip.Prefix{netutil.MustPrefix("2001:db8::/32")}}}); err == nil {
		t.Error("MPReach with IPv4 next hop accepted")
	}
}

func TestReadWriteMessageStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Open{ASN: 64500, HoldTime: 90, ID: netutil.MustAddr("10.0.0.1")},
		&Keepalive{},
		testUpdate(),
		&Notification{Code: 6, Subcode: 4},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("ReadMessage[%d]: %v", i, err)
		}
		if got.Type() != msgs[i].Type() {
			t.Errorf("message %d type = %d, want %d", i, got.Type(), msgs[i].Type())
		}
	}
}

// Property: random updates with random valid prefixes round trip.
func TestUpdateRoundTripRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		up := &Update{Origin: uint8(rnd.Intn(3)), NextHop: netutil.MustAddr("10.9.9.9")}
		n := 1 + rnd.Intn(10)
		for j := 0; j < n; j++ {
			var b [4]byte
			rnd.Read(b[:])
			bits := rnd.Intn(33)
			up.NLRI = append(up.NLRI, netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked())
		}
		pl := 1 + rnd.Intn(5)
		seg := Segment{Type: SegmentSequence}
		for j := 0; j < pl; j++ {
			seg.ASNs = append(seg.ASNs, rnd.Uint32())
		}
		up.ASPath = []Segment{seg}
		wire, err := Encode(nil, up)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Decode(wire)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		u := got.(*Update)
		if !reflect.DeepEqual(u.NLRI, up.NLRI) || !reflect.DeepEqual(u.ASPath, up.ASPath) {
			t.Fatalf("iteration %d: round trip mismatch", i)
		}
	}
}

func BenchmarkUpdateEncode(b *testing.B) {
	up := testUpdate()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Encode(buf[:0], up)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateDecode(b *testing.B) {
	wire, _ := Encode(nil, testUpdate())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
