package bgp

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"
)

// RouteEvent is one announcement or withdrawal received by a collector,
// flattened to the granularity the RIB consumes.
type RouteEvent struct {
	// Peer identifies the session that delivered the route.
	PeerAS uint32
	PeerID netip.Addr
	// Prefix is the affected route.
	Prefix netip.Prefix
	// Withdraw is true for withdrawals; Path and NextHop are then empty.
	Withdraw bool
	// Path is the AS_PATH as received.
	Path []Segment
	// NextHop is the protocol next hop (IPv4 or IPv6).
	NextHop netip.Addr
}

// Events flattens an Update from the given peer into RouteEvents.
func Events(peerAS uint32, peerID netip.Addr, up *Update) []RouteEvent {
	var out []RouteEvent
	for _, p := range up.Withdrawn {
		out = append(out, RouteEvent{PeerAS: peerAS, PeerID: peerID, Prefix: p, Withdraw: true})
	}
	for _, p := range up.MPUnreach {
		out = append(out, RouteEvent{PeerAS: peerAS, PeerID: peerID, Prefix: p, Withdraw: true})
	}
	for _, p := range up.NLRI {
		out = append(out, RouteEvent{PeerAS: peerAS, PeerID: peerID, Prefix: p, Path: up.ASPath, NextHop: up.NextHop})
	}
	if up.MPReach != nil {
		for _, p := range up.MPReach.NLRI {
			out = append(out, RouteEvent{PeerAS: peerAS, PeerID: peerID, Prefix: p, Path: up.ASPath, NextHop: up.MPReach.NextHop})
		}
	}
	return out
}

// Collector is a passive BGP speaker in the style of a RIPE RIS route
// server: it accepts sessions, completes the OPEN/KEEPALIVE handshake,
// and forwards every received route to a handler.
type Collector struct {
	// ASN and ID identify the collector in OPEN messages.
	ASN uint32
	ID  netip.Addr
	// HoldTime is advertised in OPEN (seconds); zero means 90.
	HoldTime uint16
	// Handle receives every route event. It must be safe for concurrent
	// calls (one goroutine per session).
	Handle func(RouteEvent)
	// Logf, if non-nil, receives session diagnostics.
	Logf func(format string, args ...any)

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

func (c *Collector) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Collector) holdTime() uint16 {
	if c.HoldTime == 0 {
		return 90
	}
	return c.HoldTime
}

// Serve accepts BGP sessions on ln until Close.
func (c *Collector) Serve(ln net.Listener) error {
	c.mu.Lock()
	c.ln = ln
	c.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			c.wg.Wait()
			if closed {
				return nil
			}
			return err
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			if err := c.serveConn(conn); err != nil {
				c.logf("bgp: session %v: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Close shuts the listener down and waits for sessions to drain.
func (c *Collector) Close() error {
	c.mu.Lock()
	c.closed = true
	ln := c.ln
	c.mu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

func (c *Collector) serveConn(conn net.Conn) error {
	defer conn.Close()
	// Passive handshake: expect OPEN, answer OPEN + KEEPALIVE, expect
	// KEEPALIVE, then consume UPDATEs.
	msg, err := ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("awaiting OPEN: %w", err)
	}
	peerOpen, ok := msg.(*Open)
	if !ok {
		return fmt.Errorf("expected OPEN, got %T", msg)
	}
	if err := WriteMessage(conn, &Open{ASN: c.ASN, HoldTime: c.holdTime(), ID: c.ID}); err != nil {
		return fmt.Errorf("sending OPEN: %w", err)
	}
	if err := WriteMessage(conn, &Keepalive{}); err != nil {
		return fmt.Errorf("sending KEEPALIVE: %w", err)
	}
	msg, err = ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("awaiting KEEPALIVE: %w", err)
	}
	if _, ok := msg.(*Keepalive); !ok {
		return fmt.Errorf("expected KEEPALIVE, got %T", msg)
	}
	for {
		msg, err := ReadMessage(conn)
		if err != nil {
			return nil // session torn down
		}
		switch m := msg.(type) {
		case *Update:
			if c.Handle != nil {
				for _, ev := range Events(peerOpen.ASN, peerOpen.ID, m) {
					c.Handle(ev)
				}
			}
		case *Keepalive:
			// Liveness only.
		case *Notification:
			return m
		default:
			return fmt.Errorf("unexpected %T mid-session", msg)
		}
	}
}

// Speaker is an active BGP session used to feed a collector: it dials,
// handshakes, and then sends updates.
type Speaker struct {
	ASN uint32
	ID  netip.Addr

	conn net.Conn
}

// DialSpeaker establishes a session with a collector at addr.
func DialSpeaker(addr string, asn uint32, id netip.Addr) (*Speaker, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("bgp: dialing %s: %w", addr, err)
	}
	s := &Speaker{ASN: asn, ID: id, conn: conn}
	if err := s.handshake(); err != nil {
		conn.Close()
		return nil, err
	}
	return s, nil
}

func (s *Speaker) handshake() error {
	if err := WriteMessage(s.conn, &Open{ASN: s.ASN, HoldTime: 90, ID: s.ID}); err != nil {
		return fmt.Errorf("bgp: sending OPEN: %w", err)
	}
	msg, err := ReadMessage(s.conn)
	if err != nil {
		return fmt.Errorf("bgp: awaiting OPEN: %w", err)
	}
	if _, ok := msg.(*Open); !ok {
		return fmt.Errorf("bgp: expected OPEN, got %T", msg)
	}
	msg, err = ReadMessage(s.conn)
	if err != nil {
		return fmt.Errorf("bgp: awaiting KEEPALIVE: %w", err)
	}
	if _, ok := msg.(*Keepalive); !ok {
		return fmt.Errorf("bgp: expected KEEPALIVE, got %T", msg)
	}
	return WriteMessage(s.conn, &Keepalive{})
}

// Send transmits one UPDATE.
func (s *Speaker) Send(up *Update) error {
	return WriteMessage(s.conn, up)
}

// Close terminates the session with a CEASE notification.
func (s *Speaker) Close() error {
	WriteMessage(s.conn, &Notification{Code: 6}) // best effort CEASE
	return s.conn.Close()
}
