package rtr

import (
	"net"
	"testing"
	"time"

	"ripki/internal/netutil"
	"ripki/internal/rpki/vrp"
)

// TestServerRejectsUnsupportedPDU checks the cache answers a stray
// Cache Response (a server-role PDU) with an Error Report and keeps the
// session alive.
func TestServerRejectsUnsupportedPDU(t *testing.T) {
	set := vrp.NewSet()
	set.Add(v("10.0.0.0/8", 8, 1))
	_, addr := startServer(t, set)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WritePDU(conn, &CacheResponse{SessionID: 9}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	pdu, err := ReadPDU(conn)
	if err != nil {
		t.Fatal(err)
	}
	er, ok := pdu.(*ErrorReport)
	if !ok {
		t.Fatalf("expected ErrorReport, got %T", pdu)
	}
	if er.Code != ErrUnsupportedPDU {
		t.Errorf("error code = %d", er.Code)
	}
	if er.Error() == "" {
		t.Error("empty error text rendering")
	}
	// Session still serves a proper query afterwards.
	if err := WritePDU(conn, &ResetQuery{}); err != nil {
		t.Fatal(err)
	}
	pdu, err = ReadPDU(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pdu.(*CacheResponse); !ok {
		t.Fatalf("expected CacheResponse after error, got %T", pdu)
	}
}

// TestServerSessionMismatchTriggersCacheReset checks a serial query
// with a stale session ID is answered with Cache Reset.
func TestServerSessionMismatchTriggersCacheReset(t *testing.T) {
	set := vrp.NewSet()
	_, addr := startServer(t, set) // session 911
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WritePDU(conn, &SerialQuery{SessionID: 1, Serial: 0}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	pdu, err := ReadPDU(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pdu.(*CacheReset); !ok {
		t.Fatalf("expected CacheReset, got %T", pdu)
	}
}

// TestClientErrorReportSurfaces checks a cache-side error report aborts
// the sync with the report as the error.
func TestClientErrorReportSurfaces(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := ReadPDU(conn); err != nil { // consume the reset query
			return
		}
		WritePDU(conn, &ErrorReport{Code: ErrInternal, Text: "cache exploded"})
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Reset()
	if err == nil {
		t.Fatal("Reset succeeded despite error report")
	}
	er, ok := err.(*ErrorReport)
	if !ok || er.Code != ErrInternal {
		t.Fatalf("error = %v", err)
	}
}

// TestClientRejectsCacheResetToResetQuery: answering a reset query with
// Cache Reset is a protocol violation the client must flag.
func TestClientRejectsCacheResetToResetQuery(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := ReadPDU(conn); err != nil {
			return
		}
		WritePDU(conn, &CacheReset{})
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Reset(); err == nil {
		t.Fatal("Reset accepted a CacheReset answer")
	}
}

// TestServerCloseDisconnectsClients checks Close tears sessions down.
func TestServerCloseDisconnectsClients(t *testing.T) {
	set := vrp.NewSet()
	srv, addr := startServer(t, set)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitNotify(); err == nil {
		t.Error("WaitNotify survived server shutdown")
	}
	// Serving again on a closed server fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := srv.Serve(ln); err == nil {
		t.Error("Serve on closed server succeeded")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("Dial to closed port succeeded")
	}
}

func TestServerSerialAccessor(t *testing.T) {
	srv := NewServer(nil, 1)
	if srv.Serial() != 0 {
		t.Error("initial serial != 0")
	}
	s2 := vrp.NewSet()
	s2.Add(vrp.VRP{Prefix: netutil.MustPrefix("10.0.0.0/8"), MaxLength: 8, ASN: 5})
	srv.Update(s2)
	if srv.Serial() != 1 {
		t.Error("serial after update != 1")
	}
}
