package rtr

import (
	"fmt"
	"net"
	"net/netip"
	"slices"
	"sync"

	"ripki/internal/netutil"
	"ripki/internal/rpki/vrp"
)

// Client is a router-side RTR session. It maintains a local copy of the
// cache's VRP set and exposes it as a *vrp.Set for origin validation.
type Client struct {
	conn net.Conn

	mu        sync.Mutex
	sessionID uint16
	serial    uint32
	haveState bool
	records   map[vrp.VRP]bool
	// live mirrors records as a query-ready vrp.Set, maintained
	// record-by-record so View never pays a full rebuild.
	live *vrp.Set
	// changed accumulates the prefixes whose VRP membership moved since
	// the last TakeDelta — the input for delta-scoped revalidation.
	changed map[netip.Prefix]struct{}
}

// NewClient wraps an established connection to an RTR cache.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:    conn,
		records: make(map[vrp.VRP]bool),
		live:    vrp.NewSet(),
		changed: make(map[netip.Prefix]struct{}),
	}
}

// Dial connects to an RTR cache at addr ("host:port").
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rtr: dialing %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// Close terminates the session.
func (c *Client) Close() error { return c.conn.Close() }

// Serial returns the serial of the last completed sync.
func (c *Client) Serial() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serial
}

// Len returns the number of VRPs currently held.
func (c *Client) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// Reset performs a full synchronisation (Reset Query) and replaces the
// local state.
func (c *Client) Reset() error {
	if err := WritePDU(c.conn, &ResetQuery{}); err != nil {
		return fmt.Errorf("rtr: sending reset query: %w", err)
	}
	return c.readResponse(true)
}

// Poll performs an incremental synchronisation (Serial Query). If the
// cache answers Cache Reset, Poll falls back to a full Reset.
func (c *Client) Poll() error {
	c.mu.Lock()
	if !c.haveState {
		c.mu.Unlock()
		return c.Reset()
	}
	q := &SerialQuery{SessionID: c.sessionID, Serial: c.serial}
	c.mu.Unlock()
	if err := WritePDU(c.conn, q); err != nil {
		return fmt.Errorf("rtr: sending serial query: %w", err)
	}
	return c.readResponse(false)
}

// readResponse consumes one cache response. If full is true the local
// state is cleared when the Cache Response arrives.
func (c *Client) readResponse(full bool) error {
	for {
		pdu, err := ReadPDU(c.conn)
		if err != nil {
			return fmt.Errorf("rtr: reading response: %w", err)
		}
		switch p := pdu.(type) {
		case *CacheResponse:
			c.mu.Lock()
			c.sessionID = p.SessionID
			if full {
				// A full resync replaces everything, so mark every prefix
				// held before the wipe as changed; the announcements that
				// follow mark the new membership. The union is a superset
				// of the true difference — delta consumers revalidate a
				// little too much rather than too little.
				for v := range c.records {
					c.markLocked(v.Prefix)
				}
				c.records = make(map[vrp.VRP]bool)
				c.live = vrp.NewSet()
			}
			c.mu.Unlock()
			if err := c.readRecords(); err != nil {
				return err
			}
			return nil
		case *CacheReset:
			if full {
				return fmt.Errorf("rtr: cache reset in answer to reset query")
			}
			return c.Reset()
		case *SerialNotify:
			// Permitted between request and response; ignore, data comes.
			continue
		case *ErrorReport:
			return p
		default:
			return fmt.Errorf("rtr: unexpected %T awaiting cache response", pdu)
		}
	}
}

// readRecords consumes prefix PDUs until End of Data.
func (c *Client) readRecords() error {
	for {
		pdu, err := ReadPDU(c.conn)
		if err != nil {
			return fmt.Errorf("rtr: reading records: %w", err)
		}
		switch p := pdu.(type) {
		case *Prefix:
			c.mu.Lock()
			if p.Announce {
				if !c.records[p.VRP] {
					c.records[p.VRP] = true
					// records only ever holds VRPs decoded from valid
					// PDUs, so Add cannot fail.
					_ = c.live.Add(p.VRP)
					c.markLocked(p.VRP.Prefix)
				}
			} else if c.records[p.VRP] {
				delete(c.records, p.VRP)
				c.live.Remove(p.VRP)
				c.markLocked(p.VRP.Prefix)
			}
			c.mu.Unlock()
		case *EndOfData:
			c.mu.Lock()
			c.serial = p.Serial
			c.haveState = true
			c.mu.Unlock()
			return nil
		case *ErrorReport:
			return p
		default:
			return fmt.Errorf("rtr: unexpected %T inside response", pdu)
		}
	}
}

// WaitNotify blocks until the cache sends a Serial Notify (or the
// connection fails) and returns the advertised serial. Callers typically
// follow with Poll.
func (c *Client) WaitNotify() (uint32, error) {
	for {
		pdu, err := ReadPDU(c.conn)
		if err != nil {
			return 0, err
		}
		switch p := pdu.(type) {
		case *SerialNotify:
			return p.Serial, nil
		case *ErrorReport:
			return 0, p
		default:
			// Ignore stray PDUs outside a response window.
		}
	}
}

// Set snapshots the current records into a vrp.Set for origin
// validation. The returned set is an independent copy.
func (c *Client) Set() *vrp.Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live.Clone()
}

// View returns the client's live VRP set without copying. Unlike Set,
// the returned set IS the session state: the next Poll or Reset mutates
// it in place, so callers must treat it as read-only and re-read the
// view after each synchronisation (the sim engine swaps it into each
// router's source at every refresh).
func (c *Client) View() *vrp.Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live
}

// TakeDelta drains and returns the prefixes whose VRP membership
// changed since the previous call (or since the session began), sorted.
// A full resynchronisation marks every prefix held before and after the
// wipe — a superset of the true difference, so delta-scoped
// revalidation can only over-check, never miss a change.
func (c *Client) TakeDelta() []netip.Prefix {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.changed) == 0 {
		return nil
	}
	out := make([]netip.Prefix, 0, len(c.changed))
	for p := range c.changed {
		out = append(out, p)
	}
	clear(c.changed)
	slices.SortFunc(out, netutil.ComparePrefixes)
	return out
}

// markLocked records a membership change at p. Called with c.mu held.
func (c *Client) markLocked(p netip.Prefix) {
	c.changed[p] = struct{}{}
}
