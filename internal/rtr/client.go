package rtr

import (
	"fmt"
	"net"
	"sync"

	"ripki/internal/rpki/vrp"
)

// Client is a router-side RTR session. It maintains a local copy of the
// cache's VRP set and exposes it as a *vrp.Set for origin validation.
type Client struct {
	conn net.Conn

	mu        sync.Mutex
	sessionID uint16
	serial    uint32
	haveState bool
	records   map[vrp.VRP]bool
}

// NewClient wraps an established connection to an RTR cache.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, records: make(map[vrp.VRP]bool)}
}

// Dial connects to an RTR cache at addr ("host:port").
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rtr: dialing %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// Close terminates the session.
func (c *Client) Close() error { return c.conn.Close() }

// Serial returns the serial of the last completed sync.
func (c *Client) Serial() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serial
}

// Len returns the number of VRPs currently held.
func (c *Client) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// Reset performs a full synchronisation (Reset Query) and replaces the
// local state.
func (c *Client) Reset() error {
	if err := WritePDU(c.conn, &ResetQuery{}); err != nil {
		return fmt.Errorf("rtr: sending reset query: %w", err)
	}
	return c.readResponse(true)
}

// Poll performs an incremental synchronisation (Serial Query). If the
// cache answers Cache Reset, Poll falls back to a full Reset.
func (c *Client) Poll() error {
	c.mu.Lock()
	if !c.haveState {
		c.mu.Unlock()
		return c.Reset()
	}
	q := &SerialQuery{SessionID: c.sessionID, Serial: c.serial}
	c.mu.Unlock()
	if err := WritePDU(c.conn, q); err != nil {
		return fmt.Errorf("rtr: sending serial query: %w", err)
	}
	return c.readResponse(false)
}

// readResponse consumes one cache response. If full is true the local
// state is cleared when the Cache Response arrives.
func (c *Client) readResponse(full bool) error {
	for {
		pdu, err := ReadPDU(c.conn)
		if err != nil {
			return fmt.Errorf("rtr: reading response: %w", err)
		}
		switch p := pdu.(type) {
		case *CacheResponse:
			c.mu.Lock()
			c.sessionID = p.SessionID
			if full {
				c.records = make(map[vrp.VRP]bool)
			}
			c.mu.Unlock()
			if err := c.readRecords(); err != nil {
				return err
			}
			return nil
		case *CacheReset:
			if full {
				return fmt.Errorf("rtr: cache reset in answer to reset query")
			}
			return c.Reset()
		case *SerialNotify:
			// Permitted between request and response; ignore, data comes.
			continue
		case *ErrorReport:
			return p
		default:
			return fmt.Errorf("rtr: unexpected %T awaiting cache response", pdu)
		}
	}
}

// readRecords consumes prefix PDUs until End of Data.
func (c *Client) readRecords() error {
	for {
		pdu, err := ReadPDU(c.conn)
		if err != nil {
			return fmt.Errorf("rtr: reading records: %w", err)
		}
		switch p := pdu.(type) {
		case *Prefix:
			c.mu.Lock()
			if p.Announce {
				c.records[p.VRP] = true
			} else {
				delete(c.records, p.VRP)
			}
			c.mu.Unlock()
		case *EndOfData:
			c.mu.Lock()
			c.serial = p.Serial
			c.haveState = true
			c.mu.Unlock()
			return nil
		case *ErrorReport:
			return p
		default:
			return fmt.Errorf("rtr: unexpected %T inside response", pdu)
		}
	}
}

// WaitNotify blocks until the cache sends a Serial Notify (or the
// connection fails) and returns the advertised serial. Callers typically
// follow with Poll.
func (c *Client) WaitNotify() (uint32, error) {
	for {
		pdu, err := ReadPDU(c.conn)
		if err != nil {
			return 0, err
		}
		switch p := pdu.(type) {
		case *SerialNotify:
			return p.Serial, nil
		case *ErrorReport:
			return 0, p
		default:
			// Ignore stray PDUs outside a response window.
		}
	}
}

// Set snapshots the current records into a vrp.Set for origin
// validation.
func (c *Client) Set() *vrp.Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := vrp.NewSet()
	for v := range c.records {
		// records only ever holds VRPs decoded from valid PDUs, so Add
		// cannot fail; ignore the error deliberately.
		_ = s.Add(v)
	}
	return s
}
