package rtr

import (
	"errors"
	"log"
	"net"
	"slices"
	"sync"

	"ripki/internal/netutil"
	"ripki/internal/rpki/vrp"
)

// delta is the set change from one serial to the next.
type delta struct {
	announce []vrp.VRP
	withdraw []vrp.VRP
}

// Server is an RTR cache. It serves the current VRP set to router
// clients, answers incremental serial queries from retained deltas, and
// notifies connected routers when the set changes.
type Server struct {
	// Logf, if non-nil, receives connection-level diagnostics.
	Logf func(format string, args ...any)

	mu        sync.Mutex
	sessionID uint16
	serial    uint32
	current   *vrp.Set
	owned     bool             // current is the server's private copy, safe to edit in place
	deltas    map[uint32]delta // keyed by the serial the delta upgrades FROM
	maxDeltas int
	conns     map[net.Conn]struct{}
	closed    bool
	ln        net.Listener
}

// NewServer creates a cache serving the given VRP set. sessionID
// identifies this cache incarnation; routers restart their session when
// it changes.
func NewServer(set *vrp.Set, sessionID uint16) *Server {
	if set == nil {
		set = vrp.NewSet()
	}
	return &Server{
		sessionID: sessionID,
		current:   set,
		deltas:    make(map[uint32]delta),
		maxDeltas: 16,
		conns:     make(map[net.Conn]struct{}),
	}
}

// Serial returns the cache's current serial number.
func (s *Server) Serial() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serial
}

// Update replaces the served VRP set, records a delta for incremental
// sync, bumps the serial, and sends Serial Notify to connected routers.
// An update that does not change the set is a no-op: the serial stays
// put and no notification is sent, so steady-state refresh cycles do
// not churn serials or wake connected routers.
func (s *Server) Update(set *vrp.Set) {
	s.mu.Lock()
	ann, wd := set.Diff(s.current)
	if len(ann) == 0 && len(wd) == 0 {
		s.mu.Unlock()
		return
	}
	s.recordDeltaLocked(delta{announce: ann, withdraw: wd})
	s.current = set
	s.owned = false
	s.notifyLocked()
}

// UpdateDelta applies a caller-supplied delta to the served set:
// announce VRPs that should now be present, withdraw VRPs that should
// be gone. Entries that would not change membership are dropped, so —
// exactly like Update — a delta that nets to nothing is a no-op: no
// serial bump, no notification, no retained history. The effective
// delta is recorded in the same canonical order Diff produces
// (vrp.Compare over the sorted-All ordering), so routers cannot tell
// the two update paths apart byte-for-byte. The first in-place edit
// clones the served set — the set handed to NewServer or Update stays
// the caller's — and subsequent deltas edit the private copy directly.
func (s *Server) UpdateDelta(announce, withdraw []vrp.VRP) {
	s.mu.Lock()
	var ann, wd []vrp.VRP
	ensureOwned := func() {
		if !s.owned {
			s.current = s.current.Clone()
			s.owned = true
		}
	}
	for _, v := range announce {
		cp, err := netutil.Canonical(v.Prefix)
		if err != nil {
			continue
		}
		v.Prefix = cp
		if s.current.Contains(v) {
			continue
		}
		ensureOwned()
		if s.current.Add(v) != nil {
			continue
		}
		ann = append(ann, v)
	}
	for _, v := range withdraw {
		cp, err := netutil.Canonical(v.Prefix)
		if err != nil {
			continue
		}
		v.Prefix = cp
		if !s.current.Contains(v) {
			continue
		}
		ensureOwned()
		if !s.current.Remove(v) {
			continue
		}
		wd = append(wd, v)
	}
	if len(ann) == 0 && len(wd) == 0 {
		s.mu.Unlock()
		return
	}
	slices.SortFunc(ann, vrp.Compare)
	slices.SortFunc(wd, vrp.Compare)
	s.recordDeltaLocked(delta{announce: ann, withdraw: wd})
	s.notifyLocked()
}

// recordDeltaLocked retains a delta keyed by the serial it upgrades
// from, evicts the oldest past the retention cap, and bumps the serial.
// Called with s.mu held.
func (s *Server) recordDeltaLocked(d delta) {
	s.deltas[s.serial] = d
	if len(s.deltas) > s.maxDeltas {
		// Drop the oldest retained delta (smallest key).
		var oldest uint32
		first := true
		for k := range s.deltas {
			if first || k < oldest {
				oldest, first = k, false
			}
		}
		delete(s.deltas, oldest)
	}
	s.serial++
}

// ResetSession simulates a cache restart: the session ID changes, the
// serial restarts from zero, and all retained deltas are dropped. The
// served set is kept (pass a new set to Update afterwards if the restart
// also lost data). Connected routers receive a Serial Notify carrying
// the new session ID; their next Serial Query mismatches and is answered
// with Cache Reset, forcing a full resynchronisation — exactly the RFC
// 8210 session-restart dance.
func (s *Server) ResetSession(sessionID uint16) {
	s.mu.Lock()
	s.sessionID = sessionID
	s.serial = 0
	s.deltas = make(map[uint32]delta)
	s.notifyLocked()
}

// notifyLocked sends Serial Notify for the current (session, serial) to
// every connected router. Called with s.mu held; releases it.
func (s *Server) notifyLocked() {
	serial, session := s.serial, s.sessionID
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	notify := (&SerialNotify{SessionID: session, Serial: serial}).SerializeTo(nil)
	for _, c := range conns {
		if _, err := c.Write(notify); err != nil {
			s.logf("rtr: notify %v: %v", c.RemoteAddr(), err)
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Serve accepts router sessions on ln until Close is called. It returns
// the listener error after shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rtr: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops accepting sessions and disconnects all routers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		pdu, err := ReadPDU(conn)
		if err != nil {
			return
		}
		switch q := pdu.(type) {
		case *ResetQuery:
			s.sendFull(conn)
		case *SerialQuery:
			s.sendIncremental(conn, q)
		case *ErrorReport:
			s.logf("rtr: client %v error: %s", conn.RemoteAddr(), q.Text)
			return
		default:
			report := &ErrorReport{Code: ErrUnsupportedPDU, Encapsulated: pdu.SerializeTo(nil), Text: "unexpected PDU"}
			if err := WritePDU(conn, report); err != nil {
				return
			}
		}
	}
}

// sendFull answers a reset query: Cache Response, every VRP as an
// announcement, End of Data.
func (s *Server) sendFull(conn net.Conn) {
	s.mu.Lock()
	session, serial := s.sessionID, s.serial
	all := s.current.All()
	s.mu.Unlock()

	buf := (&CacheResponse{SessionID: session}).SerializeTo(nil)
	for _, v := range all {
		buf = (&Prefix{Announce: true, VRP: v}).SerializeTo(buf)
	}
	buf = (&EndOfData{SessionID: session, Serial: serial}).SerializeTo(buf)
	if _, err := conn.Write(buf); err != nil {
		s.logf("rtr: send full to %v: %v", conn.RemoteAddr(), err)
	}
}

// sendIncremental answers a serial query with the retained deltas from
// the client's serial to now, or Cache Reset if history is gone.
func (s *Server) sendIncremental(conn net.Conn, q *SerialQuery) {
	s.mu.Lock()
	session, serial := s.sessionID, s.serial
	if q.SessionID != session {
		s.mu.Unlock()
		WritePDU(conn, &CacheReset{})
		return
	}
	if q.Serial == serial {
		// Nothing new: empty response confirming the serial.
		s.mu.Unlock()
		buf := (&CacheResponse{SessionID: session}).SerializeTo(nil)
		buf = (&EndOfData{SessionID: session, Serial: serial}).SerializeTo(buf)
		conn.Write(buf)
		return
	}
	var steps []delta
	ok := true
	for at := q.Serial; at != serial; at++ {
		d, have := s.deltas[at]
		if !have {
			ok = false
			break
		}
		steps = append(steps, d)
	}
	s.mu.Unlock()
	if !ok {
		WritePDU(conn, &CacheReset{})
		return
	}
	buf := (&CacheResponse{SessionID: session}).SerializeTo(nil)
	for _, d := range steps {
		for _, v := range d.withdraw {
			buf = (&Prefix{Announce: false, VRP: v}).SerializeTo(buf)
		}
		for _, v := range d.announce {
			buf = (&Prefix{Announce: true, VRP: v}).SerializeTo(buf)
		}
	}
	buf = (&EndOfData{SessionID: session, Serial: serial}).SerializeTo(buf)
	if _, err := conn.Write(buf); err != nil {
		s.logf("rtr: send incremental to %v: %v", conn.RemoteAddr(), err)
	}
}
