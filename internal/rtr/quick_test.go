package rtr

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"

	"ripki/internal/rpki/vrp"
)

// Property: every structurally valid IPv4 prefix PDU round-trips
// byte-exactly through Serialize → Decode → Serialize.
func TestQuickPrefixV4RoundTrip(t *testing.T) {
	f := func(a [4]byte, bitsRaw, maxRaw uint8, asn uint32, announce bool) bool {
		bits := int(bitsRaw) % 33
		maxLen := bits + int(maxRaw)%(33-bits)
		p := netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked()
		in := &Prefix{Announce: announce, VRP: vrp.VRP{Prefix: p, MaxLength: maxLen, ASN: asn}}
		wire := in.SerializeTo(nil)
		out, n, err := Decode(wire)
		if err != nil || n != len(wire) {
			return false
		}
		return bytes.Equal(out.SerializeTo(nil), wire)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: IPv6 prefix PDUs too.
func TestQuickPrefixV6RoundTrip(t *testing.T) {
	f := func(a [16]byte, bitsRaw, maxRaw uint8, asn uint32) bool {
		bits := int(bitsRaw) % 129
		maxLen := bits + int(maxRaw)%(129-bits)
		p := netip.PrefixFrom(netip.AddrFrom16(a), bits).Masked()
		in := &Prefix{Announce: true, VRP: vrp.VRP{Prefix: p, MaxLength: maxLen, ASN: asn}}
		wire := in.SerializeTo(nil)
		out, _, err := Decode(wire)
		if err != nil {
			return false
		}
		return bytes.Equal(out.SerializeTo(nil), wire)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: serial-carrying PDUs round-trip for all session/serial
// combinations.
func TestQuickSerialPDUs(t *testing.T) {
	f := func(session uint16, serial uint32, kind uint8) bool {
		var in PDU
		switch kind % 3 {
		case 0:
			in = &SerialNotify{SessionID: session, Serial: serial}
		case 1:
			in = &SerialQuery{SessionID: session, Serial: serial}
		default:
			in = &EndOfData{SessionID: session, Serial: serial}
		}
		wire := in.SerializeTo(nil)
		out, _, err := Decode(wire)
		if err != nil {
			return false
		}
		return bytes.Equal(out.SerializeTo(nil), wire)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: error reports with arbitrary payload and text round-trip.
func TestQuickErrorReport(t *testing.T) {
	f := func(code uint16, enc []byte, text string) bool {
		if len(enc) > 1024 || len(text) > 1024 {
			return true // outside the bounded PDU size, skip
		}
		in := &ErrorReport{Code: code, Encapsulated: enc, Text: text}
		wire := in.SerializeTo(nil)
		out, _, err := Decode(wire)
		if err != nil {
			return false
		}
		got := out.(*ErrorReport)
		return got.Code == code && bytes.Equal(got.Encapsulated, enc) && got.Text == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
