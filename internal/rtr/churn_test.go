package rtr

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"testing"

	"ripki/internal/rpki/vrp"
)

func churnVRP(i int) vrp.VRP {
	return vrp.VRP{
		Prefix:    netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24),
		MaxLength: 24,
		ASN:       uint32(64500 + i%100),
	}
}

func churnSet(t testing.TB, lo, hi int) *vrp.Set {
	t.Helper()
	s := vrp.NewSet()
	for i := lo; i < hi; i++ {
		if err := s.Add(churnVRP(i)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestUpdateNoopKeepsSerial: an update that does not change the set must
// not bump the serial, record a delta, or notify routers.
func TestUpdateNoopKeepsSerial(t *testing.T) {
	set := churnSet(t, 0, 10)
	srv := NewServer(set, 7)
	if got := srv.Serial(); got != 0 {
		t.Fatalf("initial serial = %d", got)
	}
	same := churnSet(t, 0, 10) // equal content, distinct object
	srv.Update(same)
	if got := srv.Serial(); got != 0 {
		t.Errorf("no-op update bumped serial to %d", got)
	}
	srv.Update(churnSet(t, 0, 11))
	if got := srv.Serial(); got != 1 {
		t.Errorf("real update: serial = %d, want 1", got)
	}
	srv.Update(churnSet(t, 0, 11))
	if got := srv.Serial(); got != 1 {
		t.Errorf("second no-op bumped serial to %d", got)
	}
}

// TestNoopUpdateDoesNotNotify: a connected client must receive no Serial
// Notify for a no-op update.
func TestNoopUpdateDoesNotNotify(t *testing.T) {
	srv := NewServer(churnSet(t, 0, 5), 1)
	srv.Logf = func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}

	srv.Update(churnSet(t, 0, 5)) // no-op: nothing should arrive
	srv.Update(churnSet(t, 0, 6)) // real: Serial Notify arrives
	serial, err := c.WaitNotify()
	if err != nil {
		t.Fatal(err)
	}
	if serial != 1 {
		t.Errorf("first notify carries serial %d, want 1 (no-op must not notify)", serial)
	}
}

// TestConcurrentChurnIncrementalSync hammers Update from one goroutine
// while several clients poll incrementally; every client must converge
// on the final set. Run with -race.
func TestConcurrentChurnIncrementalSync(t *testing.T) {
	const rounds = 60
	const clients = 4

	srv := NewServer(churnSet(t, 0, 1), 9)
	srv.Logf = func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if err := c.Reset(); err != nil {
				errs <- fmt.Errorf("client %d reset: %w", ci, err)
				return
			}
			// Poll under churn: incremental sync, falling back to full
			// resync whenever the delta history has been dropped.
			for c.Serial() < rounds {
				if _, err := c.WaitNotify(); err != nil {
					errs <- fmt.Errorf("client %d notify: %w", ci, err)
					return
				}
				if err := c.Poll(); err != nil {
					errs <- fmt.Errorf("client %d poll: %w", ci, err)
					return
				}
			}
			errs <- nil
		}(ci)
	}

	// Rapid churn: grow the set one VRP per round (every update real, so
	// every round bumps the serial exactly once).
	for i := 1; i <= rounds; i++ {
		srv.Update(churnSet(t, 0, i+1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Serial(); got != rounds {
		t.Errorf("final serial = %d, want %d", got, rounds)
	}

	// A fresh client's full sync and the final truth must agree.
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Len(), rounds+1; got != want {
		t.Errorf("converged client has %d VRPs, want %d", got, want)
	}
}

// TestResetSessionForcesFullResync: after a cache restart the old
// session's incremental query must be answered with Cache Reset, and the
// client transparently falls back to a full synchronisation.
func TestResetSessionForcesFullResync(t *testing.T) {
	srv := NewServer(churnSet(t, 0, 8), 3)
	srv.Logf = func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	srv.Update(churnSet(t, 0, 9))
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Serial() != 1 || c.Len() != 9 {
		t.Fatalf("pre-restart: serial=%d len=%d", c.Serial(), c.Len())
	}

	srv.ResetSession(4)
	if got := srv.Serial(); got != 0 {
		t.Errorf("post-restart serial = %d, want 0", got)
	}
	// The client still believes in session 3/serial 1; its next poll is
	// answered with Cache Reset and falls back to a full resync.
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Serial() != 0 || c.Len() != 9 {
		t.Errorf("post-restart client: serial=%d len=%d, want 0/9", c.Serial(), c.Len())
	}
}
