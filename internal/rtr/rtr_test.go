package rtr

import (
	"bytes"
	"math/rand"
	"net"
	"net/netip"
	"testing"
	"time"

	"ripki/internal/netutil"
	"ripki/internal/rpki/vrp"
)

func v(prefix string, maxLen int, asn uint32) vrp.VRP {
	return vrp.VRP{Prefix: netutil.MustPrefix(prefix), MaxLength: maxLen, ASN: asn}
}

func TestPDURoundTrips(t *testing.T) {
	pdus := []PDU{
		&SerialNotify{SessionID: 7, Serial: 42},
		&SerialQuery{SessionID: 7, Serial: 41},
		&ResetQuery{},
		&CacheResponse{SessionID: 7},
		&Prefix{Announce: true, VRP: v("193.0.6.0/24", 24, 3333)},
		&Prefix{Announce: false, VRP: v("2001:db8::/32", 48, 64500)},
		&EndOfData{SessionID: 7, Serial: 42},
		&CacheReset{},
		&ErrorReport{Code: ErrCorruptData, Encapsulated: []byte{1, 2, 3}, Text: "bad"},
		&ErrorReport{Code: ErrNoDataAvailable},
	}
	for _, p := range pdus {
		wire := p.SerializeTo(nil)
		got, n, err := Decode(wire)
		if err != nil {
			t.Fatalf("Decode(%T): %v", p, err)
		}
		if n != len(wire) {
			t.Errorf("Decode(%T) consumed %d of %d", p, n, len(wire))
		}
		back := got.SerializeTo(nil)
		if !bytes.Equal(back, wire) {
			t.Errorf("%T round trip mismatch:\n  %x\n  %x", p, wire, back)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	wire := (&Prefix{Announce: true, VRP: v("193.0.6.0/24", 24, 3333)}).SerializeTo(nil)

	// Truncation at every boundary.
	for i := 0; i < len(wire); i++ {
		if _, _, err := Decode(wire[:i]); err == nil {
			t.Errorf("Decode accepted truncation to %d bytes", i)
		}
	}
	// Wrong version.
	bad := append([]byte(nil), wire...)
	bad[0] = 1
	if _, _, err := Decode(bad); err == nil {
		t.Error("Decode accepted wrong version")
	}
	// Unknown type.
	bad = append([]byte(nil), wire...)
	bad[1] = 99
	if _, _, err := Decode(bad); err == nil {
		t.Error("Decode accepted unknown type")
	}
	// Absurd length field.
	bad = append([]byte(nil), wire...)
	bad[4], bad[5], bad[6], bad[7] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := Decode(bad); err == nil {
		t.Error("Decode accepted absurd length")
	}
	// maxLen < bits.
	bad = append([]byte(nil), wire...)
	bad[9], bad[10] = 24, 20
	if _, _, err := Decode(bad); err == nil {
		t.Error("Decode accepted maxLen < bits")
	}
	// Host bits set.
	bad = append([]byte(nil), wire...)
	bad[15] = 0x01 // low byte of the address
	if _, _, err := Decode(bad); err == nil {
		t.Error("Decode accepted prefix with host bits")
	}
}

func TestDecodeErrorReportBounds(t *testing.T) {
	// encLen overruns the PDU.
	er := (&ErrorReport{Code: 0, Encapsulated: []byte{1}, Text: "x"}).SerializeTo(nil)
	er[8+3] = 0xff // encLen low byte huge
	if _, _, err := Decode(er); err == nil {
		t.Error("Decode accepted error report with overrunning encapsulation")
	}
}

func TestReadPDUStream(t *testing.T) {
	var buf bytes.Buffer
	want := []PDU{
		&ResetQuery{},
		&CacheResponse{SessionID: 1},
		&Prefix{Announce: true, VRP: v("10.0.0.0/8", 8, 64500)},
		&EndOfData{SessionID: 1, Serial: 0},
	}
	for _, p := range want {
		if err := WritePDU(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range want {
		got, err := ReadPDU(&buf)
		if err != nil {
			t.Fatalf("ReadPDU[%d]: %v", i, err)
		}
		if !bytes.Equal(got.SerializeTo(nil), w.SerializeTo(nil)) {
			t.Errorf("ReadPDU[%d] = %T, want %T", i, got, w)
		}
	}
}

func startServer(t *testing.T, set *vrp.Set) (*Server, string) {
	t.Helper()
	srv := NewServer(set, 911)
	srv.Logf = t.Logf
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func TestClientFullSync(t *testing.T) {
	set := vrp.NewSet()
	set.Add(v("193.0.6.0/24", 24, 3333))
	set.Add(v("10.0.0.0/8", 16, 64500))
	set.Add(v("2001:db8::/32", 48, 64501))

	_, addr := startServer(t, set)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("client has %d VRPs, want 3", c.Len())
	}
	got := c.Set()
	if st := got.Validate(netutil.MustPrefix("193.0.6.0/24"), 3333); st != vrp.Valid {
		t.Errorf("validation through RTR = %v, want valid", st)
	}
}

func TestClientIncrementalSync(t *testing.T) {
	set := vrp.NewSet()
	set.Add(v("10.0.0.0/8", 8, 1))
	srv, addr := startServer(t, set)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if c.Serial() != 0 || c.Len() != 1 {
		t.Fatalf("after reset: serial=%d len=%d", c.Serial(), c.Len())
	}

	// Update the cache: drop 10/8, add two more.
	set2 := vrp.NewSet()
	set2.Add(v("11.0.0.0/8", 8, 2))
	set2.Add(v("12.0.0.0/8", 8, 3))
	done := make(chan error, 1)
	go func() {
		_, err := c.WaitNotify()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let WaitNotify block first
	srv.Update(set2)
	if err := <-done; err != nil {
		t.Fatalf("WaitNotify: %v", err)
	}
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Serial() != 1 {
		t.Errorf("serial = %d, want 1", c.Serial())
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	got := c.Set()
	if got.Validate(netutil.MustPrefix("10.0.0.0/8"), 1) != vrp.NotFound {
		t.Error("withdrawn VRP still present")
	}
	if got.Validate(netutil.MustPrefix("11.0.0.0/8"), 2) != vrp.Valid {
		t.Error("announced VRP missing")
	}
}

func TestClientPollNoChanges(t *testing.T) {
	set := vrp.NewSet()
	set.Add(v("10.0.0.0/8", 8, 1))
	_, addr := startServer(t, set)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d after no-op poll", c.Len())
	}
}

func TestClientFallsBackToResetAfterHistoryLoss(t *testing.T) {
	set := vrp.NewSet()
	srv, addr := startServer(t, set)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	// Push more updates than the server retains.
	for i := 0; i < 20; i++ {
		s := vrp.NewSet()
		s.Add(v("10.0.0.0/8", 8, uint32(i+1)))
		srv.Update(s)
	}
	// Drain notifies so the response stream stays aligned.
	for i := 0; i < 20; i++ {
		if _, err := c.WaitNotify(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Serial() != 20 {
		t.Errorf("serial = %d, want 20", c.Serial())
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestPollBeforeResetDoesFullSync(t *testing.T) {
	set := vrp.NewSet()
	set.Add(v("10.0.0.0/8", 8, 1))
	_, addr := startServer(t, set)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestServerManyVRPs(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	set := vrp.NewSet()
	n := 5000
	for i := 0; i < n; i++ {
		var b [4]byte
		rnd.Read(b[:])
		bits := 8 + rnd.Intn(17)
		p := netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked()
		set.Add(vrp.VRP{Prefix: p, MaxLength: bits, ASN: uint32(i)})
	}
	want := set.Len()
	_, addr := startServer(t, set)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != want {
		t.Errorf("client VRPs = %d, want %d", c.Len(), want)
	}
}

func BenchmarkPrefixSerialize(b *testing.B) {
	p := &Prefix{Announce: true, VRP: v("193.0.6.0/24", 24, 3333)}
	buf := make([]byte, 0, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.SerializeTo(buf[:0])
	}
}

func BenchmarkPrefixDecode(b *testing.B) {
	wire := (&Prefix{Announce: true, VRP: v("193.0.6.0/24", 24, 3333)}).SerializeTo(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
