// Package rtr implements the RPKI-to-Router protocol (RFC 6810).
//
// RTR is how validated ROA payloads reach BGP routers: a cache server
// (the relying party) feeds (prefix, maxLength, origin AS) records to
// router clients, which then perform origin validation locally. The
// paper's authors built RTRlib for exactly this role; this package is
// the equivalent substrate so that the hijack experiments can run
// through the same interface real routers use.
//
// The wire format follows RFC 6810 protocol version 0: an 8-byte header
// (version, type, session/zero, length) followed by a type-specific
// body. PDUs decode from byte slices into caller-owned structs
// (gopacket-style DecodeFromBytes) and serialize by appending to a
// buffer, so steady-state sessions do not allocate per record.
package rtr

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"

	"ripki/internal/rpki/vrp"
)

// Version is the RTR protocol version implemented (RFC 6810).
const Version = 0

// PDU type codes from RFC 6810 §5.
const (
	TypeSerialNotify  = 0
	TypeSerialQuery   = 1
	TypeResetQuery    = 2
	TypeCacheResponse = 3
	TypeIPv4Prefix    = 4
	TypeIPv6Prefix    = 6
	TypeEndOfData     = 7
	TypeCacheReset    = 8
	TypeErrorReport   = 10
)

// Error codes from RFC 6810 §10.
const (
	ErrCorruptData        = 0
	ErrInternal           = 1
	ErrNoDataAvailable    = 2
	ErrInvalidRequest     = 3
	ErrUnsupportedVersion = 4
	ErrUnsupportedPDU     = 5
	ErrUnknownWithdrawal  = 6
	ErrDuplicateAnnounce  = 7
)

// Flags for prefix PDUs.
const (
	// FlagAnnounce marks an announcement; its absence marks a withdrawal.
	FlagAnnounce = 1
)

const headerLen = 8

// maxPDULen bounds accepted PDUs to keep a malicious peer from forcing
// huge allocations. Error reports carry an encapsulated PDU plus text;
// everything else is tiny.
const maxPDULen = 4096

// PDU is implemented by every protocol data unit.
type PDU interface {
	// Type returns the RFC 6810 type code.
	Type() uint8
	// SerializeTo appends the full wire form (header + body) to dst and
	// returns the extended slice.
	SerializeTo(dst []byte) []byte
}

func header(dst []byte, typ uint8, session uint16, length uint32) []byte {
	dst = append(dst, Version, typ)
	dst = binary.BigEndian.AppendUint16(dst, session)
	dst = binary.BigEndian.AppendUint32(dst, length)
	return dst
}

// SerialNotify tells the router that the cache has new data.
type SerialNotify struct {
	SessionID uint16
	Serial    uint32
}

func (p *SerialNotify) Type() uint8 { return TypeSerialNotify }

func (p *SerialNotify) SerializeTo(dst []byte) []byte {
	dst = header(dst, TypeSerialNotify, p.SessionID, 12)
	return binary.BigEndian.AppendUint32(dst, p.Serial)
}

// SerialQuery asks the cache for changes since Serial.
type SerialQuery struct {
	SessionID uint16
	Serial    uint32
}

func (p *SerialQuery) Type() uint8 { return TypeSerialQuery }

func (p *SerialQuery) SerializeTo(dst []byte) []byte {
	dst = header(dst, TypeSerialQuery, p.SessionID, 12)
	return binary.BigEndian.AppendUint32(dst, p.Serial)
}

// ResetQuery asks the cache for the complete data set.
type ResetQuery struct{}

func (p *ResetQuery) Type() uint8 { return TypeResetQuery }

func (p *ResetQuery) SerializeTo(dst []byte) []byte {
	return header(dst, TypeResetQuery, 0, headerLen)
}

// CacheResponse opens the cache's answer to a query.
type CacheResponse struct {
	SessionID uint16
}

func (p *CacheResponse) Type() uint8 { return TypeCacheResponse }

func (p *CacheResponse) SerializeTo(dst []byte) []byte {
	return header(dst, TypeCacheResponse, p.SessionID, headerLen)
}

// Prefix carries one VRP announcement or withdrawal (IPv4 or IPv6 on
// the wire, chosen by the address family of VRP.Prefix).
type Prefix struct {
	Announce bool
	VRP      vrp.VRP
}

func (p *Prefix) Type() uint8 {
	if p.VRP.Prefix.Addr().Is4() {
		return TypeIPv4Prefix
	}
	return TypeIPv6Prefix
}

func (p *Prefix) SerializeTo(dst []byte) []byte {
	var flags byte
	if p.Announce {
		flags = FlagAnnounce
	}
	if p.VRP.Prefix.Addr().Is4() {
		dst = header(dst, TypeIPv4Prefix, 0, 20)
		dst = append(dst, flags, byte(p.VRP.Prefix.Bits()), byte(p.VRP.MaxLength), 0)
		a4 := p.VRP.Prefix.Addr().As4()
		dst = append(dst, a4[:]...)
	} else {
		dst = header(dst, TypeIPv6Prefix, 0, 32)
		dst = append(dst, flags, byte(p.VRP.Prefix.Bits()), byte(p.VRP.MaxLength), 0)
		a16 := p.VRP.Prefix.Addr().As16()
		dst = append(dst, a16[:]...)
	}
	return binary.BigEndian.AppendUint32(dst, p.VRP.ASN)
}

// EndOfData closes the cache's answer and carries the new serial.
type EndOfData struct {
	SessionID uint16
	Serial    uint32
}

func (p *EndOfData) Type() uint8 { return TypeEndOfData }

func (p *EndOfData) SerializeTo(dst []byte) []byte {
	dst = header(dst, TypeEndOfData, p.SessionID, 12)
	return binary.BigEndian.AppendUint32(dst, p.Serial)
}

// CacheReset tells the router the cache cannot serve an incremental
// update; the router must issue a ResetQuery.
type CacheReset struct{}

func (p *CacheReset) Type() uint8 { return TypeCacheReset }

func (p *CacheReset) SerializeTo(dst []byte) []byte {
	return header(dst, TypeCacheReset, 0, headerLen)
}

// ErrorReport signals a protocol error; it optionally encapsulates the
// offending PDU and a diagnostic message.
type ErrorReport struct {
	Code         uint16
	Encapsulated []byte
	Text         string
}

func (p *ErrorReport) Type() uint8 { return TypeErrorReport }

func (p *ErrorReport) SerializeTo(dst []byte) []byte {
	length := uint32(headerLen + 4 + len(p.Encapsulated) + 4 + len(p.Text))
	dst = header(dst, TypeErrorReport, p.Code, length)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(p.Encapsulated)))
	dst = append(dst, p.Encapsulated...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(p.Text)))
	return append(dst, p.Text...)
}

func (p *ErrorReport) Error() string {
	return fmt.Sprintf("rtr: peer reported error %d: %s", p.Code, p.Text)
}

// Decode parses one complete PDU from buf (header included). It returns
// the PDU and the number of bytes consumed.
func Decode(buf []byte) (PDU, int, error) {
	if len(buf) < headerLen {
		return nil, 0, fmt.Errorf("rtr: short header (%d bytes)", len(buf))
	}
	if buf[0] != Version {
		return nil, 0, fmt.Errorf("rtr: unsupported protocol version %d", buf[0])
	}
	typ := buf[1]
	session := binary.BigEndian.Uint16(buf[2:4])
	length := binary.BigEndian.Uint32(buf[4:8])
	if length < headerLen || length > maxPDULen {
		return nil, 0, fmt.Errorf("rtr: implausible PDU length %d", length)
	}
	if uint32(len(buf)) < length {
		return nil, 0, fmt.Errorf("rtr: truncated PDU (have %d, need %d)", len(buf), length)
	}
	body := buf[headerLen:length]
	n := int(length)
	switch typ {
	case TypeSerialNotify, TypeSerialQuery, TypeEndOfData:
		if len(body) != 4 {
			return nil, 0, fmt.Errorf("rtr: type %d body length %d, want 4", typ, len(body))
		}
		serial := binary.BigEndian.Uint32(body)
		switch typ {
		case TypeSerialNotify:
			return &SerialNotify{SessionID: session, Serial: serial}, n, nil
		case TypeSerialQuery:
			return &SerialQuery{SessionID: session, Serial: serial}, n, nil
		default:
			return &EndOfData{SessionID: session, Serial: serial}, n, nil
		}
	case TypeResetQuery:
		if len(body) != 0 {
			return nil, 0, fmt.Errorf("rtr: reset query with body")
		}
		return &ResetQuery{}, n, nil
	case TypeCacheResponse:
		if len(body) != 0 {
			return nil, 0, fmt.Errorf("rtr: cache response with body")
		}
		return &CacheResponse{SessionID: session}, n, nil
	case TypeCacheReset:
		if len(body) != 0 {
			return nil, 0, fmt.Errorf("rtr: cache reset with body")
		}
		return &CacheReset{}, n, nil
	case TypeIPv4Prefix:
		if len(body) != 12 {
			return nil, 0, fmt.Errorf("rtr: IPv4 prefix body length %d, want 12", len(body))
		}
		return decodePrefix(body, false, n)
	case TypeIPv6Prefix:
		if len(body) != 24 {
			return nil, 0, fmt.Errorf("rtr: IPv6 prefix body length %d, want 24", len(body))
		}
		return decodePrefix(body, true, n)
	case TypeErrorReport:
		if len(body) < 8 {
			return nil, 0, fmt.Errorf("rtr: error report too short")
		}
		encLen := binary.BigEndian.Uint32(body)
		if uint32(len(body)) < 4+encLen+4 {
			return nil, 0, fmt.Errorf("rtr: error report encapsulation overruns PDU")
		}
		enc := append([]byte(nil), body[4:4+encLen]...)
		rest := body[4+encLen:]
		textLen := binary.BigEndian.Uint32(rest)
		if uint32(len(rest)) < 4+textLen {
			return nil, 0, fmt.Errorf("rtr: error report text overruns PDU")
		}
		return &ErrorReport{Code: session, Encapsulated: enc, Text: string(rest[4 : 4+textLen])}, n, nil
	default:
		return nil, 0, fmt.Errorf("rtr: unsupported PDU type %d", typ)
	}
}

func decodePrefix(body []byte, v6 bool, n int) (PDU, int, error) {
	flags, bits, maxLen := body[0], int(body[1]), int(body[2])
	var addr netip.Addr
	var asnOff int
	if v6 {
		var a [16]byte
		copy(a[:], body[4:20])
		addr = netip.AddrFrom16(a)
		asnOff = 20
	} else {
		var a [4]byte
		copy(a[:], body[4:8])
		addr = netip.AddrFrom4(a)
		asnOff = 8
	}
	fam := 32
	if v6 {
		fam = 128
	}
	if bits > fam || maxLen > fam || maxLen < bits {
		return nil, 0, fmt.Errorf("rtr: inconsistent prefix lengths bits=%d max=%d", bits, maxLen)
	}
	asn := binary.BigEndian.Uint32(body[asnOff : asnOff+4])
	p := netip.PrefixFrom(addr, bits)
	if p.Masked() != p {
		return nil, 0, fmt.Errorf("rtr: prefix %v has host bits set", p)
	}
	return &Prefix{
		Announce: flags&FlagAnnounce != 0,
		VRP:      vrp.VRP{Prefix: p, MaxLength: maxLen, ASN: asn},
	}, n, nil
}

// ReadPDU reads exactly one PDU from r. It is the blocking, stream-based
// counterpart to Decode.
func ReadPDU(r io.Reader) (PDU, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint32(hdr[4:8])
	if length < headerLen || length > maxPDULen {
		return nil, fmt.Errorf("rtr: implausible PDU length %d", length)
	}
	buf := make([]byte, length)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[headerLen:]); err != nil {
		return nil, fmt.Errorf("rtr: reading PDU body: %w", err)
	}
	pdu, _, err := Decode(buf)
	return pdu, err
}

// WritePDU serializes p and writes it to w.
func WritePDU(w io.Writer, p PDU) error {
	buf := p.SerializeTo(nil)
	_, err := w.Write(buf)
	return err
}
