// Command ripki-rtrd serves validated ROA payloads to routers over the
// RPKI-to-Router protocol (RFC 6810), like a relying-party cache
// (rpki-client + stayrtr, or routinator).
//
// The VRPs come either from a CSV export (-vrps, the format
// ripki-worldgen writes) or from validating a freshly generated world
// (-domains/-seed).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"ripki/internal/obs"
	"ripki/internal/rpki/vrp"
	"ripki/internal/rtr"
	"ripki/internal/webworld"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ripki-rtrd: ")
	var (
		listen    = flag.String("listen", "127.0.0.1:8282", "RTR listen address")
		vrpFile   = flag.String("vrps", "", "VRP CSV file to serve (instead of generating a world)")
		domains   = flag.Int("domains", 20000, "world size when generating")
		seed      = flag.Int64("seed", 1, "world generation seed")
		session   = flag.Uint("session", 911, "RTR session ID")
		pprofAt   = flag.String("pprof", "", `serve the runtime profiles (/debug/pprof/) over HTTP on this address (e.g. "127.0.0.1:6060"); off when empty`)
		metricsAt = flag.String("metrics", "", `serve Prometheus metrics (/metrics: build info, uptime, serial, VRP count) over HTTP on this address; off when empty`)
	)
	flag.Parse()

	if *pprofAt != "" {
		ln, err := obs.ServePprof(*pprofAt)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", ln.Addr())
	}

	var set *vrp.Set
	if *vrpFile != "" {
		f, err := os.Open(*vrpFile)
		if err != nil {
			log.Fatal(err)
		}
		set, err = vrp.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		w, err := webworld.Generate(webworld.Config{Seed: *seed, Domains: *domains})
		if err != nil {
			log.Fatal(err)
		}
		res := w.Repo.Validate(w.MeasureTime())
		for _, p := range res.Problems {
			log.Printf("validation: %v", p)
		}
		set = res.VRPs
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d VRPs over RTR on %s (session %d)\n", set.Len(), ln.Addr(), *session)
	srv := rtr.NewServer(set, uint16(*session))
	srv.Logf = log.Printf

	if *metricsAt != "" {
		start := time.Now()
		reg := obs.NewRegistry()
		obs.RegisterBuildInfo(reg)
		reg.GaugeFunc("ripki_rtrd_uptime_seconds", "Seconds since the cache started.",
			func() float64 { return time.Since(start).Seconds() })
		reg.GaugeFunc("ripki_rtrd_serial", "Current RTR serial of the served payload set.",
			func() float64 { return float64(srv.Serial()) })
		vrps := set.Len()
		reg.GaugeFunc("ripki_rtrd_vrps", "VRPs in the served payload set.",
			func() float64 { return float64(vrps) })
		mln, err := net.Listen("tcp", *metricsAt)
		if err != nil {
			log.Fatal(err)
		}
		defer mln.Close()
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		go func() {
			if err := http.Serve(mln, mux); err != nil {
				log.Printf("metrics listener: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", mln.Addr())
	}
	if err := srv.Serve(ln); err != nil {
		log.Fatal(err)
	}
}
