// Command ripki-rtrd serves validated ROA payloads to routers over the
// RPKI-to-Router protocol (RFC 6810), like a relying-party cache
// (rpki-client + stayrtr, or routinator).
//
// The VRPs come either from a CSV export (-vrps, the format
// ripki-worldgen writes) or from validating a freshly generated world
// (-domains/-seed).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"ripki/internal/obs"
	"ripki/internal/rpki/vrp"
	"ripki/internal/rtr"
	"ripki/internal/webworld"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ripki-rtrd: ")
	var (
		listen  = flag.String("listen", "127.0.0.1:8282", "RTR listen address")
		vrpFile = flag.String("vrps", "", "VRP CSV file to serve (instead of generating a world)")
		domains = flag.Int("domains", 20000, "world size when generating")
		seed    = flag.Int64("seed", 1, "world generation seed")
		session = flag.Uint("session", 911, "RTR session ID")
		pprofAt = flag.String("pprof", "", `serve the runtime profiles (/debug/pprof/) over HTTP on this address (e.g. "127.0.0.1:6060"); off when empty`)
	)
	flag.Parse()

	if *pprofAt != "" {
		ln, err := obs.ServePprof(*pprofAt)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", ln.Addr())
	}

	var set *vrp.Set
	if *vrpFile != "" {
		f, err := os.Open(*vrpFile)
		if err != nil {
			log.Fatal(err)
		}
		set, err = vrp.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		w, err := webworld.Generate(webworld.Config{Seed: *seed, Domains: *domains})
		if err != nil {
			log.Fatal(err)
		}
		res := w.Repo.Validate(w.MeasureTime())
		for _, p := range res.Problems {
			log.Printf("validation: %v", p)
		}
		set = res.VRPs
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d VRPs over RTR on %s (session %d)\n", set.Len(), ln.Addr(), *session)
	srv := rtr.NewServer(set, uint16(*session))
	srv.Logf = log.Printf
	if err := srv.Serve(ln); err != nil {
		log.Fatal(err)
	}
}
