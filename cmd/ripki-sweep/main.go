// Command ripki-sweep runs a parameter grid of scenario simulations
// across a worker pool and emits deterministic cross-run aggregates:
// per-tick min/mean/max/p50/p95 of every exposure metric and per
// relying-party hijack-success rates, per grid cell. Same grid + master
// seed ⇒ byte-identical output at ANY -workers value.
//
//	ripki-sweep -scenarios hijack-window,route-leak -replicates 4 -workers 8
//	ripki-sweep -scenarios rp-lag -param slow_ticks=10,20,40 -format json
//	ripki-sweep -grid grid.json -workers 4
//	ripki-sweep -scenarios trust-anchor-outage -seeds 1,2,3 -domains 4000,8000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"ripki"
)

// listFlag parses a comma-separated axis into typed values.
func listFlag[T any](s string, parse func(string) (T, error)) ([]T, error) {
	if s == "" {
		return nil, nil
	}
	var out []T
	for _, part := range strings.Split(s, ",") {
		v, err := parse(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// paramAxes collects repeatable -param key=v1,v2 axes.
type paramAxes map[string][]string

func (p paramAxes) String() string { return fmt.Sprint(map[string][]string(p)) }

func (p paramAxes) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" || v == "" {
		return fmt.Errorf("want key=value[,value...], got %q", s)
	}
	if _, dup := p[k]; dup {
		return fmt.Errorf("param axis %q given twice; list its values comma-separated in one flag", k)
	}
	p[k] = strings.Split(v, ",")
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ripki-sweep: ")
	params := paramAxes{}
	var (
		scenarios = flag.String("scenarios", "baseline",
			"comma-separated scenario axis; registered: "+strings.Join(ripki.Scenarios(), ", "))
		gridPath      = flag.String("grid", "", "JSON grid file (overrides the axis flags)")
		masterSeed    = flag.Int64("master-seed", 1, "master seed for per-replicate seed derivation")
		replicates    = flag.Int("replicates", 3, "seeds derived per grid cell")
		seeds         = flag.String("seeds", "", "explicit comma-separated seed axis (overrides -replicates)")
		domains       = flag.String("domains", "", "comma-separated world-size axis (default: sim default)")
		ticks         = flag.String("tick", "", "comma-separated tick axis (e.g. 10s,30s)")
		durations     = flag.String("duration", "", "comma-separated horizon axis (e.g. 10m,30m)")
		sampleEvery   = flag.String("sample-every", "", "comma-separated probe-cadence axis (ticks)")
		sampleDomains = flag.String("sample-domains", "", "comma-separated probe-sample-size axis")
		workers       = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS); output is identical at any value")
		format        = flag.String("format", "tsv", `output format: "tsv" or "json"`)
		quiet         = flag.Bool("quiet", false, "suppress per-run progress on stderr")
	)
	flag.Var(params, "param", "scenario parameter axis key=value[,value...] (repeatable, crossed)")
	flag.Parse()

	var grid ripki.SweepGrid
	if *gridPath != "" {
		data, err := os.ReadFile(*gridPath)
		if err != nil {
			log.Fatal(err)
		}
		grid, err = ripki.ParseSweepGrid(data)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var err error
		grid.Scenarios, err = listFlag(*scenarios, func(s string) (string, error) { return s, nil })
		fatal(err)
		grid.MasterSeed = *masterSeed
		grid.Replicates = *replicates
		grid.Seeds, err = listFlag(*seeds, func(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) })
		fatal(err)
		grid.Domains, err = listFlag(*domains, strconv.Atoi)
		fatal(err)
		grid.Ticks, err = listFlag(*ticks, time.ParseDuration)
		fatal(err)
		grid.Durations, err = listFlag(*durations, time.ParseDuration)
		fatal(err)
		grid.SampleEvery, err = listFlag(*sampleEvery, strconv.Atoi)
		fatal(err)
		grid.SampleDomains, err = listFlag(*sampleDomains, strconv.Atoi)
		fatal(err)
		if len(params) > 0 {
			grid.Params = params
		}
	}

	opt := ripki.SweepOptions{Workers: *workers}
	if !*quiet {
		start := time.Now()
		opt.Progress = func(done, total int, rr *ripki.SweepRunResult) {
			fmt.Fprintf(os.Stderr, "ripki-sweep: [%3d/%d] %s (%.1fs)\n", done, total, rr, time.Since(start).Seconds())
		}
	}
	res, err := ripki.RunSweep(grid, opt)
	if err != nil {
		log.Fatal(err)
	}

	switch *format {
	case "tsv":
		err = res.WriteTSV(os.Stdout)
	case "json":
		err = res.WriteJSON(os.Stdout)
	default:
		log.Fatalf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
