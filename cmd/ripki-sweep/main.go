// Command ripki-sweep runs a parameter grid of scenario simulations
// across a worker pool and emits deterministic cross-run aggregates:
// per-tick min/mean/max/p50/p95/p99 of every exposure metric and per
// relying-party hijack-success rates, per grid cell. Same grid + master
// seed ⇒ byte-identical output at ANY -workers value and either
// -share-worlds setting.
//
// The scenario axis accepts compositions ("roa-churn+rp-lag" runs both
// event streams in one world) and "-param component.key=..." routes a
// param axis to one component; a routed axis must address a scenario
// present in every cell (the plan fails loudly otherwise).
//
//	ripki-sweep -scenarios hijack-window,route-leak -replicates 4 -workers 8
//	ripki-sweep -scenarios rp-lag -param slow_ticks=10,20,40 -format json
//	ripki-sweep -grid grid.json -workers 4
//	ripki-sweep -scenarios trust-anchor-outage -seeds 1,2,3 -domains 4000,8000
//	ripki-sweep -scenarios roa-churn -replicates 64 -streaming
//	ripki-sweep -scenarios hijack-window+rp-lag -param rp-lag.issue=2,4
//
// -share-worlds (on by default) generates each distinct (seed, domains)
// world once and clones it per run instead of regenerating; it never
// changes the output. -streaming folds runs into online accumulators as
// they complete, bounding memory by the grid instead of the run count;
// its percentiles become estimates once a cell exceeds the exact
// buffer (25 replicates for p50/p95, 100 for p99; see
// docs/sweep.md) and its output is marked mode=streaming — still
// byte-identical at any worker count.
//
// Distributed mode shards one grid across processes or machines while
// keeping the output byte-identical to a single-process run
// (docs/sweep.md, "Distributed sweeps"):
//
//	ripki-sweep -coordinate :9200 -scenarios roa-churn -replicates 8 -checkpoint ckpt/
//	ripki-sweep -worker host:9200 -workers 8          # on each machine
//	ripki-sweep -coordinate :9200 -scenarios roa-churn -replicates 8 -resume ckpt/
//	ripki-sweep -coordinate :9200 -http :9201 ...     # + GET /progress and /metrics
//	ripki-sweep -status host:9201                     # render live progress and exit
//
// The coordinator expands the grid, leases contiguous cell ranges to
// workers, journals each completed cell durably (-checkpoint), and
// writes the assembled output exactly like a local run. Workers take
// their grid and mode from the coordinator, so a worker accepts only
// -workers, -share-worlds and -quiet. -resume re-leases only cells the
// journal doesn't already hold. Ctrl-C cancels in-flight simulations
// in every mode.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ripki"
)

// errFlagParse marks a flag-parsing failure the FlagSet has already
// reported to stderr, so main exits without printing it twice.
var errFlagParse = errors.New("flag parsing failed")

// listFlag parses a comma-separated axis into typed values.
func listFlag[T any](s string, parse func(string) (T, error)) ([]T, error) {
	if s == "" {
		return nil, nil
	}
	var out []T
	for _, part := range strings.Split(s, ",") {
		v, err := parse(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// paramAxes collects repeatable -param key=v1,v2 axes.
type paramAxes map[string][]string

func (p paramAxes) String() string { return fmt.Sprint(map[string][]string(p)) }

func (p paramAxes) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" || v == "" {
		return fmt.Errorf("want key=value[,value...], got %q", s)
	}
	if _, dup := p[k]; dup {
		return fmt.Errorf("param axis %q given twice; list its values comma-separated in one flag", k)
	}
	p[k] = strings.Split(v, ",")
	return nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errFlagParse) {
			os.Exit(2) // usage error, the flag package's convention
		}
		fmt.Fprintf(os.Stderr, "ripki-sweep: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole command, testable: every byte it emits goes to the
// writers it is handed. The -quiet contract is enforced here — with
// -quiet set, NOTHING is written to stderr on a successful sweep, in
// every path (flag axes, grid file, both formats, all three modes).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	params := paramAxes{}
	fs := flag.NewFlagSet("ripki-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenarios = fs.String("scenarios", "baseline",
			`comma-separated scenario axis; "+"-joined compositions allowed ("roa-churn+rp-lag"); registered: `+
				strings.Join(ripki.Scenarios(), ", "))
		gridPath      = fs.String("grid", "", "JSON grid file (overrides the axis flags)")
		masterSeed    = fs.Int64("master-seed", 1, "master seed for per-replicate seed derivation")
		replicates    = fs.Int("replicates", 3, "seeds derived per grid cell")
		seeds         = fs.String("seeds", "", "explicit comma-separated seed axis (overrides -replicates)")
		domains       = fs.String("domains", "", "comma-separated world-size axis (default: sim default)")
		ticks         = fs.String("tick", "", "comma-separated tick axis (e.g. 10s,30s)")
		durations     = fs.String("duration", "", "comma-separated horizon axis (e.g. 10m,30m)")
		sampleEvery   = fs.String("sample-every", "", "comma-separated probe-cadence axis (ticks)")
		sampleDomains = fs.String("sample-domains", "", "comma-separated probe-sample-size axis")
		workers       = fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS); output is identical at any value")
		shareWorlds   = fs.Bool("share-worlds", true, "generate each (seed, domains) world once and clone per run (never changes output)")
		streaming     = fs.Bool("streaming", false, "fold runs into online accumulators (memory bounded by the grid; p50/p95 estimated past 25 replicates, p99 past 100)")
		format        = fs.String("format", "tsv", `output format: "tsv" or "json"`)
		quiet         = fs.Bool("quiet", false, "suppress all progress output on stderr")
		coordinate    = fs.String("coordinate", "", `run as distributed-sweep coordinator listening on this address (e.g. ":9200")`)
		workerAddr    = fs.String("worker", "", "run as distributed-sweep worker for the coordinator at this address")
		checkpoint    = fs.String("checkpoint", "", "coordinator: journal each completed cell to this directory (one fsynced record per cell)")
		resume        = fs.String("resume", "", "coordinator: resume from this checkpoint directory, re-leasing only unfinished cells (implies -checkpoint)")
		leaseTimeout  = fs.Duration("lease-timeout", 0, "coordinator: re-lease a silent cell range after this long (default 2m)")
		leaseCells    = fs.Int("lease-cells", 0, "coordinator: max cells per lease (default cells/16, min 1)")
		httpAddr      = fs.String("http", "", `coordinator: serve GET /progress (live sweep standing as JSON) and GET /metrics (Prometheus text) on this address (e.g. ":9201")`)
		pprofFlag     = fs.Bool("pprof", false, "coordinator: also mount /debug/pprof/ on the -http listener")
		status        = fs.String("status", "", "fetch a running coordinator's /progress from this address (its -http address), render it, and exit")
	)
	fs.Var(params, "param", `scenario parameter axis key=value[,value...] (repeatable, crossed); "component.key=..." targets one component of a composition`)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h is a successful exit, not an error
		}
		return errFlagParse // already reported by the FlagSet
	}

	if *status != "" {
		if *coordinate != "" || *workerAddr != "" {
			return errors.New("-status is its own mode; drop -coordinate/-worker")
		}
		return printStatus(*status, stdout)
	}
	if *coordinate != "" && *workerAddr != "" {
		return errors.New("-coordinate and -worker are mutually exclusive")
	}
	if *workerAddr != "" {
		// A worker's grid, mode and output all come from the coordinator:
		// any flag that shapes them locally is a misunderstanding worth
		// stopping on, not silently ignoring.
		allowed := map[string]bool{"worker": true, "workers": true, "share-worlds": true, "quiet": true}
		var bad []string
		fs.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				bad = append(bad, "-"+f.Name)
			}
		})
		if len(bad) > 0 {
			return fmt.Errorf("%s: worker mode takes its grid and mode from the coordinator; only -workers, -share-worlds and -quiet apply", strings.Join(bad, ", "))
		}
		cfg := ripki.DistWorkerConfig{
			Options: ripki.SweepOptions{Workers: *workers, ShareWorlds: *shareWorlds},
		}
		if !*quiet {
			cfg.Logf = func(f string, a ...any) { fmt.Fprintf(stderr, "ripki-sweep worker: "+f+"\n", a...) }
		}
		return ripki.DistWork(ctx, *workerAddr, cfg)
	}
	if *coordinate == "" {
		for name, val := range map[string]string{"-checkpoint": *checkpoint, "-resume": *resume} {
			if val != "" {
				return fmt.Errorf("%s requires -coordinate", name)
			}
		}
		if *leaseTimeout != 0 || *leaseCells != 0 {
			return errors.New("-lease-timeout and -lease-cells require -coordinate")
		}
		if *httpAddr != "" || *pprofFlag {
			return errors.New("-http and -pprof require -coordinate")
		}
	}

	var grid ripki.SweepGrid
	if *gridPath != "" {
		data, err := os.ReadFile(*gridPath)
		if err != nil {
			return err
		}
		grid, err = ripki.ParseSweepGrid(data)
		if err != nil {
			return err
		}
	} else {
		var err error
		grid.Scenarios, err = listFlag(*scenarios, func(s string) (string, error) { return s, nil })
		if err != nil {
			return err
		}
		grid.MasterSeed = *masterSeed
		grid.Replicates = *replicates
		if grid.Seeds, err = listFlag(*seeds, func(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }); err != nil {
			return err
		}
		if grid.Domains, err = listFlag(*domains, strconv.Atoi); err != nil {
			return err
		}
		if grid.Ticks, err = listFlag(*ticks, time.ParseDuration); err != nil {
			return err
		}
		if grid.Durations, err = listFlag(*durations, time.ParseDuration); err != nil {
			return err
		}
		if grid.SampleEvery, err = listFlag(*sampleEvery, strconv.Atoi); err != nil {
			return err
		}
		if grid.SampleDomains, err = listFlag(*sampleDomains, strconv.Atoi); err != nil {
			return err
		}
		if len(params) > 0 {
			grid.Params = params
		}
	}

	mode := "exact"
	if *streaming {
		mode = "streaming"
	}

	var res *ripki.SweepResult
	if *coordinate != "" {
		dir := *checkpoint
		if *resume != "" {
			if dir != "" && dir != *resume {
				return errors.New("-checkpoint and -resume must name the same directory")
			}
			dir = *resume
		}
		cfg := ripki.DistCoordinatorConfig{
			Grid:          grid,
			Streaming:     *streaming,
			LeaseTimeout:  *leaseTimeout,
			LeaseCells:    *leaseCells,
			CheckpointDir: dir,
		}
		if !*quiet {
			cfg.Logf = func(f string, a ...any) { fmt.Fprintf(stderr, "ripki-sweep coordinator: "+f+"\n", a...) }
		}
		coord, err := ripki.NewDistCoordinator(*coordinate, cfg)
		if err != nil {
			return err
		}
		if *httpAddr != "" {
			ln, err := net.Listen("tcp", *httpAddr)
			if err != nil {
				return err
			}
			srv := &http.Server{Handler: coord.Handler(*pprofFlag)}
			go srv.Serve(ln)
			defer srv.Close()
			if !*quiet {
				fmt.Fprintf(stderr, "ripki-sweep coordinator: progress on http://%s/progress\n", ln.Addr())
			}
		}
		if !*quiet {
			plan := coord.Plan()
			fmt.Fprintf(stderr, "ripki-sweep coordinator: listening on %s: %d cells × %d seeds = %d runs (mode=%s)\n",
				coord.Addr(), len(plan.Cells), len(plan.Seeds), len(plan.Specs), mode)
		}
		if res, err = coord.Run(ctx); err != nil {
			return err
		}
	} else {
		// Expand once; the header and the pool share the same plan.
		plan, err := grid.Plan()
		if err != nil {
			return err
		}
		opt := ripki.SweepOptions{Workers: *workers, ShareWorlds: *shareWorlds, Streaming: *streaming}
		if !*quiet {
			// The header and per-run progress share the -quiet gate: -quiet
			// means a successful sweep writes stderr nothing at all.
			fmt.Fprintf(stderr, "ripki-sweep: %d cells × %d seeds = %d runs (workers=%d share-worlds=%v mode=%s)\n",
				len(plan.Cells), len(plan.Seeds), len(plan.Specs), *workers, *shareWorlds, mode)
			start := time.Now()
			opt.Progress = func(done, total int, rr *ripki.SweepRunResult) {
				fmt.Fprintf(stderr, "ripki-sweep: [%3d/%d] %s (%.1fs%s)\n",
					done, total, rr, time.Since(start).Seconds(), etaSuffix(start, done, total))
			}
		}
		if res, err = ripki.RunSweepPlan(ctx, plan, opt); err != nil {
			return err
		}
	}

	switch *format {
	case "tsv":
		return res.WriteTSV(stdout)
	case "json":
		return res.WriteJSON(stdout)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// etaSuffix extrapolates elapsed/done over the remaining runs. Empty
// until the first run lands (no rate yet); ", done" on the last.
func etaSuffix(start time.Time, done, total int) string {
	switch {
	case done >= total:
		return ", done"
	case done <= 0:
		return ""
	}
	eta := time.Since(start) / time.Duration(done) * time.Duration(total-done)
	return fmt.Sprintf(", eta %.1fs", eta.Seconds())
}

// printStatus fetches a coordinator's /progress and renders it for a
// terminal.
func printStatus(addr string, stdout io.Writer) error {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/progress"
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var p ripki.DistProgress
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return fmt.Errorf("decoding %s: %w", url, err)
	}

	mode := "exact"
	if p.Streaming {
		mode = "streaming"
	}
	state := "running"
	if p.Done {
		state = "done"
	}
	fmt.Fprintf(stdout, "plan %s (mode=%s) %s, up %.1fs\n", p.PlanHash, mode, state, p.UptimeSeconds)
	fmt.Fprintf(stdout, "cells: %d/%d completed (%d resumed), %d leased, %d pending\n",
		p.Cells.Completed, p.Cells.Total, p.Cells.Resumed, p.Cells.Leased, p.Cells.Pending)
	eta := "unknown"
	if p.ETASeconds >= 0 {
		eta = fmt.Sprintf("%.1fs", p.ETASeconds)
	}
	fmt.Fprintf(stdout, "rate: %.2f cells/s, eta %s\n", p.RateCellsPerSecond, eta)
	if cp := p.Checkpoint; cp != nil {
		last := "never"
		if cp.LastWriteAgeSeconds >= 0 {
			last = fmt.Sprintf("%.1fs ago", cp.LastWriteAgeSeconds)
		}
		fmt.Fprintf(stdout, "checkpoint: %d journaled, lag %d, last write %s\n", cp.Journaled, cp.Lag, last)
	}
	fmt.Fprintf(stdout, "workers: %d\n", len(p.Workers))
	for _, w := range p.Workers {
		conn := "connected"
		if !w.Connected {
			conn = "gone"
		}
		fmt.Fprintf(stdout, "  %-21s %-9s leased=%d completed=%d (%.2f cells/s over %.1fs)\n",
			w.Name, conn, w.Leased, w.Completed, w.CellsPerSecond, w.ConnectedSeconds)
	}
	return nil
}
