// Command ripki-sweep runs a parameter grid of scenario simulations
// across a worker pool and emits deterministic cross-run aggregates:
// per-tick min/mean/max/p50/p95/p99 of every exposure metric and per
// relying-party hijack-success rates, per grid cell. Same grid + master
// seed ⇒ byte-identical output at ANY -workers value and either
// -share-worlds setting.
//
// The scenario axis accepts compositions ("roa-churn+rp-lag" runs both
// event streams in one world) and "-param component.key=..." routes a
// param axis to one component; a routed axis must address a scenario
// present in every cell (the plan fails loudly otherwise).
//
//	ripki-sweep -scenarios hijack-window,route-leak -replicates 4 -workers 8
//	ripki-sweep -scenarios rp-lag -param slow_ticks=10,20,40 -format json
//	ripki-sweep -grid grid.json -workers 4
//	ripki-sweep -scenarios trust-anchor-outage -seeds 1,2,3 -domains 4000,8000
//	ripki-sweep -scenarios roa-churn -replicates 64 -streaming
//	ripki-sweep -scenarios hijack-window+rp-lag -param rp-lag.issue=2,4
//
// -share-worlds (on by default) generates each distinct (seed, domains)
// world once and clones it per run instead of regenerating; it never
// changes the output. -streaming folds runs into online accumulators as
// they complete, bounding memory by the grid instead of the run count;
// its percentiles become estimates once a cell exceeds the exact
// buffer (25 replicates for p50/p95, 100 for p99; see
// docs/sweep.md) and its output is marked mode=streaming — still
// byte-identical at any worker count.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"ripki"
)

// errFlagParse marks a flag-parsing failure the FlagSet has already
// reported to stderr, so main exits without printing it twice.
var errFlagParse = errors.New("flag parsing failed")

// listFlag parses a comma-separated axis into typed values.
func listFlag[T any](s string, parse func(string) (T, error)) ([]T, error) {
	if s == "" {
		return nil, nil
	}
	var out []T
	for _, part := range strings.Split(s, ",") {
		v, err := parse(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// paramAxes collects repeatable -param key=v1,v2 axes.
type paramAxes map[string][]string

func (p paramAxes) String() string { return fmt.Sprint(map[string][]string(p)) }

func (p paramAxes) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" || v == "" {
		return fmt.Errorf("want key=value[,value...], got %q", s)
	}
	if _, dup := p[k]; dup {
		return fmt.Errorf("param axis %q given twice; list its values comma-separated in one flag", k)
	}
	p[k] = strings.Split(v, ",")
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errFlagParse) {
			os.Exit(2) // usage error, the flag package's convention
		}
		fmt.Fprintf(os.Stderr, "ripki-sweep: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole command, testable: every byte it emits goes to the
// writers it is handed. The -quiet contract is enforced here — with
// -quiet set, NOTHING is written to stderr on a successful sweep, in
// every path (flag axes, grid file, both formats).
func run(args []string, stdout, stderr io.Writer) error {
	params := paramAxes{}
	fs := flag.NewFlagSet("ripki-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenarios = fs.String("scenarios", "baseline",
			`comma-separated scenario axis; "+"-joined compositions allowed ("roa-churn+rp-lag"); registered: `+
				strings.Join(ripki.Scenarios(), ", "))
		gridPath      = fs.String("grid", "", "JSON grid file (overrides the axis flags)")
		masterSeed    = fs.Int64("master-seed", 1, "master seed for per-replicate seed derivation")
		replicates    = fs.Int("replicates", 3, "seeds derived per grid cell")
		seeds         = fs.String("seeds", "", "explicit comma-separated seed axis (overrides -replicates)")
		domains       = fs.String("domains", "", "comma-separated world-size axis (default: sim default)")
		ticks         = fs.String("tick", "", "comma-separated tick axis (e.g. 10s,30s)")
		durations     = fs.String("duration", "", "comma-separated horizon axis (e.g. 10m,30m)")
		sampleEvery   = fs.String("sample-every", "", "comma-separated probe-cadence axis (ticks)")
		sampleDomains = fs.String("sample-domains", "", "comma-separated probe-sample-size axis")
		workers       = fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS); output is identical at any value")
		shareWorlds   = fs.Bool("share-worlds", true, "generate each (seed, domains) world once and clone per run (never changes output)")
		streaming     = fs.Bool("streaming", false, "fold runs into online accumulators (memory bounded by the grid; p50/p95 estimated past 25 replicates, p99 past 100)")
		format        = fs.String("format", "tsv", `output format: "tsv" or "json"`)
		quiet         = fs.Bool("quiet", false, "suppress all progress output on stderr")
	)
	fs.Var(params, "param", `scenario parameter axis key=value[,value...] (repeatable, crossed); "component.key=..." targets one component of a composition`)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h is a successful exit, not an error
		}
		return errFlagParse // already reported by the FlagSet
	}

	var grid ripki.SweepGrid
	if *gridPath != "" {
		data, err := os.ReadFile(*gridPath)
		if err != nil {
			return err
		}
		grid, err = ripki.ParseSweepGrid(data)
		if err != nil {
			return err
		}
	} else {
		var err error
		grid.Scenarios, err = listFlag(*scenarios, func(s string) (string, error) { return s, nil })
		if err != nil {
			return err
		}
		grid.MasterSeed = *masterSeed
		grid.Replicates = *replicates
		if grid.Seeds, err = listFlag(*seeds, func(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }); err != nil {
			return err
		}
		if grid.Domains, err = listFlag(*domains, strconv.Atoi); err != nil {
			return err
		}
		if grid.Ticks, err = listFlag(*ticks, time.ParseDuration); err != nil {
			return err
		}
		if grid.Durations, err = listFlag(*durations, time.ParseDuration); err != nil {
			return err
		}
		if grid.SampleEvery, err = listFlag(*sampleEvery, strconv.Atoi); err != nil {
			return err
		}
		if grid.SampleDomains, err = listFlag(*sampleDomains, strconv.Atoi); err != nil {
			return err
		}
		if len(params) > 0 {
			grid.Params = params
		}
	}

	// Expand once; the header and the pool share the same plan.
	plan, err := grid.Plan()
	if err != nil {
		return err
	}
	opt := ripki.SweepOptions{Workers: *workers, ShareWorlds: *shareWorlds, Streaming: *streaming}
	if !*quiet {
		// The header and per-run progress share the -quiet gate: -quiet
		// means a successful sweep writes stderr nothing at all.
		mode := "exact"
		if *streaming {
			mode = "streaming"
		}
		fmt.Fprintf(stderr, "ripki-sweep: %d cells × %d seeds = %d runs (workers=%d share-worlds=%v mode=%s)\n",
			len(plan.Cells), len(plan.Seeds), len(plan.Specs), *workers, *shareWorlds, mode)
		start := time.Now()
		opt.Progress = func(done, total int, rr *ripki.SweepRunResult) {
			fmt.Fprintf(stderr, "ripki-sweep: [%3d/%d] %s (%.1fs)\n", done, total, rr, time.Since(start).Seconds())
		}
	}
	res, err := ripki.RunSweepPlan(plan, opt)
	if err != nil {
		return err
	}

	switch *format {
	case "tsv":
		return res.WriteTSV(stdout)
	case "json":
		return res.WriteJSON(stdout)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
