package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var fastArgs = []string{
	"-scenarios", "baseline", "-replicates", "1",
	"-domains", "800", "-tick", "30s", "-duration", "2m",
	"-sample-every", "4", "-sample-domains", "50",
}

// TestQuietIsFullyQuiet is the -quiet regression test: a successful
// sweep with -quiet writes not a single byte to stderr — no header, no
// progress — in the flag-axes path, the grid-file path, and both output
// formats.
func TestQuietIsFullyQuiet(t *testing.T) {
	gridFile := filepath.Join(t.TempDir(), "grid.json")
	if err := os.WriteFile(gridFile, []byte(`{
		"scenarios": ["baseline"], "replicates": 1, "domains": [800],
		"ticks": ["30s"], "durations": ["2m"],
		"sample_every": [4], "sample_domains": [50]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]string{
		"flag-axes-tsv":  append(append([]string{}, fastArgs...), "-quiet"),
		"flag-axes-json": append(append([]string{}, fastArgs...), "-quiet", "-format", "json"),
		"grid-file":      {"-grid", gridFile, "-quiet"},
		"streaming":      append(append([]string{}, fastArgs...), "-quiet", "-streaming"),
		"no-sharing":     append(append([]string{}, fastArgs...), "-quiet", "-share-worlds=false"),
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if err := run(args, &stdout, &stderr); err != nil {
				t.Fatal(err)
			}
			if stderr.Len() != 0 {
				t.Errorf("-quiet leaked to stderr: %q", stderr.String())
			}
			if stdout.Len() == 0 {
				t.Error("no output on stdout")
			}
		})
	}
}

// TestHeaderOnStderrWithoutQuiet: the header and progress exist — on
// stderr, never on stdout — when -quiet is absent.
func TestHeaderOnStderrWithoutQuiet(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(fastArgs, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "1 cells × 1 seeds = 1 runs") {
		t.Errorf("header missing from stderr: %q", stderr.String())
	}
	if !strings.Contains(stderr.String(), "[  1/1]") {
		t.Errorf("progress missing from stderr: %q", stderr.String())
	}
	if strings.Contains(stdout.String(), "ripki-sweep: [") {
		t.Error("progress leaked onto stdout")
	}
}

// TestStreamingMarksOutput: the streaming mode is visible in the TSV
// header, so downstream tooling can tell estimated percentiles from
// exact ones.
func TestStreamingMarksOutput(t *testing.T) {
	var exact, streamed bytes.Buffer
	if err := run(append(append([]string{}, fastArgs...), "-quiet"), &exact, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, fastArgs...), "-quiet", "-streaming"), &streamed, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(firstLine(exact.String()), "mode=streaming") {
		t.Error("exact output marked streaming")
	}
	if !strings.Contains(firstLine(streamed.String()), "mode=streaming") {
		t.Errorf("streaming output not marked: %q", firstLine(streamed.String()))
	}
}

// TestHelpAndBadFlags: -h is a successful exit (usage on stderr, nil
// error) and an unknown flag reports exactly once.
func TestHelpAndBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); err != nil {
		t.Errorf("-h returned error: %v", err)
	}
	if !strings.Contains(stderr.String(), "-share-worlds") {
		t.Error("usage missing from -h output")
	}
	stderr.Reset()
	err := run([]string{"-no-such-flag"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("unknown flag accepted")
	}
	if got := strings.Count(stderr.String(), "flag provided but not defined"); got != 1 {
		t.Errorf("parse error reported %d times, want 1: %q", got, stderr.String())
	}
	if !errors.Is(err, errFlagParse) {
		t.Errorf("parse failure not marked pre-reported: %v", err)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
