package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var fastArgs = []string{
	"-scenarios", "baseline", "-replicates", "1",
	"-domains", "800", "-tick", "30s", "-duration", "2m",
	"-sample-every", "4", "-sample-domains", "50",
}

// TestQuietIsFullyQuiet is the -quiet regression test: a successful
// sweep with -quiet writes not a single byte to stderr — no header, no
// progress — in the flag-axes path, the grid-file path, and both output
// formats.
func TestQuietIsFullyQuiet(t *testing.T) {
	gridFile := filepath.Join(t.TempDir(), "grid.json")
	if err := os.WriteFile(gridFile, []byte(`{
		"scenarios": ["baseline"], "replicates": 1, "domains": [800],
		"ticks": ["30s"], "durations": ["2m"],
		"sample_every": [4], "sample_domains": [50]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]string{
		"flag-axes-tsv":  append(append([]string{}, fastArgs...), "-quiet"),
		"flag-axes-json": append(append([]string{}, fastArgs...), "-quiet", "-format", "json"),
		"grid-file":      {"-grid", gridFile, "-quiet"},
		"streaming":      append(append([]string{}, fastArgs...), "-quiet", "-streaming"),
		"no-sharing":     append(append([]string{}, fastArgs...), "-quiet", "-share-worlds=false"),
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if err := run(context.Background(), args, &stdout, &stderr); err != nil {
				t.Fatal(err)
			}
			if stderr.Len() != 0 {
				t.Errorf("-quiet leaked to stderr: %q", stderr.String())
			}
			if stdout.Len() == 0 {
				t.Error("no output on stdout")
			}
		})
	}
}

// TestHeaderOnStderrWithoutQuiet: the header and progress exist — on
// stderr, never on stdout — when -quiet is absent.
func TestHeaderOnStderrWithoutQuiet(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), fastArgs, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "1 cells × 1 seeds = 1 runs") {
		t.Errorf("header missing from stderr: %q", stderr.String())
	}
	if !strings.Contains(stderr.String(), "[  1/1]") {
		t.Errorf("progress missing from stderr: %q", stderr.String())
	}
	if strings.Contains(stdout.String(), "ripki-sweep: [") {
		t.Error("progress leaked onto stdout")
	}
}

// TestStreamingMarksOutput: the streaming mode is visible in the TSV
// header, so downstream tooling can tell estimated percentiles from
// exact ones.
func TestStreamingMarksOutput(t *testing.T) {
	var exact, streamed bytes.Buffer
	if err := run(context.Background(), append(append([]string{}, fastArgs...), "-quiet"), &exact, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append(append([]string{}, fastArgs...), "-quiet", "-streaming"), &streamed, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(firstLine(exact.String()), "mode=streaming") {
		t.Error("exact output marked streaming")
	}
	if !strings.Contains(firstLine(streamed.String()), "mode=streaming") {
		t.Errorf("streaming output not marked: %q", firstLine(streamed.String()))
	}
}

// TestHelpAndBadFlags: -h is a successful exit (usage on stderr, nil
// error) and an unknown flag reports exactly once.
func TestHelpAndBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-h"}, &stdout, &stderr); err != nil {
		t.Errorf("-h returned error: %v", err)
	}
	if !strings.Contains(stderr.String(), "-share-worlds") {
		t.Error("usage missing from -h output")
	}
	stderr.Reset()
	err := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("unknown flag accepted")
	}
	if got := strings.Count(stderr.String(), "flag provided but not defined"); got != 1 {
		t.Errorf("parse error reported %d times, want 1: %q", got, stderr.String())
	}
	if !errors.Is(err, errFlagParse) {
		t.Errorf("parse failure not marked pre-reported: %v", err)
	}
}

// TestProgressETA: the per-run progress line carries a live ETA once a
// rate exists, and the final line says done. Two replicates give one
// intermediate line (an extrapolation) and one closing line.
func TestProgressETA(t *testing.T) {
	args := []string{
		"-scenarios", "baseline", "-replicates", "2",
		"-domains", "800", "-tick", "30s", "-duration", "2m",
		"-sample-every", "4", "-sample-domains", "50",
	}
	var stdout bytes.Buffer
	stderr := &syncBuffer{}
	if err := run(context.Background(), args, &stdout, stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), ", eta ") {
		t.Errorf("intermediate progress line lacks an ETA: %q", stderr.String())
	}
	if !strings.Contains(stderr.String(), ", done)") {
		t.Errorf("final progress line not marked done: %q", stderr.String())
	}
}

// TestDistributedFlagValidation: the mode flags police each other — a
// worker's grid comes from the coordinator, so grid-shaping flags are
// refused, and the coordinator-only flags demand -coordinate.
func TestDistributedFlagValidation(t *testing.T) {
	cases := map[string]struct {
		args []string
		want string
	}{
		"both-modes":         {[]string{"-coordinate", ":0", "-worker", "x:1"}, "mutually exclusive"},
		"worker-grid-flag":   {[]string{"-worker", "x:1", "-scenarios", "baseline"}, "-scenarios"},
		"worker-format-flag": {[]string{"-worker", "x:1", "-format", "json"}, "-format"},
		"worker-streaming":   {[]string{"-worker", "x:1", "-streaming"}, "-streaming"},
		"stray-checkpoint":   {[]string{"-checkpoint", "d"}, "requires -coordinate"},
		"stray-resume":       {[]string{"-resume", "d"}, "requires -coordinate"},
		"stray-lease-timeout": {
			append(append([]string{}, fastArgs...), "-lease-timeout", "1m"), "require -coordinate"},
		"stray-lease-cells": {
			append(append([]string{}, fastArgs...), "-lease-cells", "2"), "require -coordinate"},
		"split-journal": {[]string{"-coordinate", ":0", "-checkpoint", "a", "-resume", "b"}, "same directory"},
		"stray-http": {
			append(append([]string{}, fastArgs...), "-http", ":0"), "require -coordinate"},
		"stray-pprof": {
			append(append([]string{}, fastArgs...), "-pprof"), "require -coordinate"},
		"status-plus-coordinate": {[]string{"-status", "host:9201", "-coordinate", ":0"}, "its own mode"},
		"status-plus-worker":     {[]string{"-status", "host:9201", "-worker", "x:1"}, "its own mode"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(context.Background(), tc.args, &stdout, &stderr)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// syncBuffer lets the round-trip test poll a goroutine's stderr for the
// coordinator's "listening on" line without racing the writer.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDistributedCLIRoundTrip drives the real command in both modes —
// a coordinator with a checkpoint journal and one worker, wired over
// loopback — and demands the coordinator's stdout be byte-identical to
// the same grid run locally. This is the end-to-end CLI counterpart of
// the package-level determinism tests in internal/distsweep.
func TestDistributedCLIRoundTrip(t *testing.T) {
	gridArgs := []string{
		"-scenarios", "baseline,rp-lag", "-replicates", "2",
		"-domains", "800", "-tick", "30s", "-duration", "2m",
		"-sample-every", "4", "-sample-domains", "50",
	}
	var reference bytes.Buffer
	if err := run(context.Background(), append(append([]string{}, gridArgs...), "-quiet"), &reference, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "ckpt")
	coordArgs := append(append([]string{}, gridArgs...),
		"-coordinate", "127.0.0.1:0", "-checkpoint", ckpt, "-lease-cells", "1")
	var coordOut bytes.Buffer
	coordErr := &syncBuffer{}
	coordDone := make(chan error, 1)
	go func() {
		coordDone <- run(context.Background(), coordArgs, &coordOut, coordErr)
	}()

	// The header names the bound address; poll for it.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never announced its address: %q", coordErr.String())
		}
		for _, line := range strings.Split(coordErr.String(), "\n") {
			if _, rest, ok := strings.Cut(line, "listening on "); ok {
				addr = strings.Fields(rest)[0]
				addr = strings.TrimSuffix(addr, ":")
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	var workerOut, workerErr bytes.Buffer
	if err := run(context.Background(), []string{"-worker", addr, "-quiet"}, &workerOut, &workerErr); err != nil {
		t.Fatalf("worker: %v (stderr %q)", err, workerErr.String())
	}
	if workerOut.Len() != 0 {
		t.Errorf("worker wrote to stdout: %q", workerOut.String())
	}
	if err := <-coordDone; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if !bytes.Equal(coordOut.Bytes(), reference.Bytes()) {
		t.Error("distributed CLI output differs from local run")
	}

	// -checkpoint journalled every cell durably.
	entries, err := os.ReadDir(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	var records int
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "cell-") && strings.HasSuffix(e.Name(), ".json") {
			records++
		}
	}
	if records != 2 {
		t.Errorf("journal holds %d cell records, want 2", records)
	}
}

// TestCoordinatorHTTPAndStatus: -http serves a live /progress while the
// coordinator waits for workers, and -status renders that JSON for a
// terminal. Runs against a real coordinator process loop over loopback.
func TestCoordinatorHTTPAndStatus(t *testing.T) {
	gridArgs := []string{
		"-scenarios", "baseline", "-replicates", "1",
		"-domains", "800", "-tick", "30s", "-duration", "2m",
		"-sample-every", "4", "-sample-domains", "50",
	}
	coordArgs := append(append([]string{}, gridArgs...),
		"-coordinate", "127.0.0.1:0", "-http", "127.0.0.1:0")
	var coordOut bytes.Buffer
	coordErr := &syncBuffer{}
	coordDone := make(chan error, 1)
	go func() {
		coordDone <- run(context.Background(), coordArgs, &coordOut, coordErr)
	}()

	// The header names both addresses; poll for them.
	var leaseAddr, httpAddr string
	deadline := time.Now().Add(10 * time.Second)
	for leaseAddr == "" || httpAddr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never announced its addresses: %q", coordErr.String())
		}
		for _, line := range strings.Split(coordErr.String(), "\n") {
			if _, rest, ok := strings.Cut(line, "listening on "); ok {
				leaseAddr = strings.TrimSuffix(strings.Fields(rest)[0], ":")
			}
			if _, rest, ok := strings.Cut(line, "progress on http://"); ok {
				httpAddr = strings.TrimSuffix(strings.Fields(rest)[0], "/progress")
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Live /progress before any worker connects: everything pending, no
	// rate yet.
	resp, err := http.Get("http://" + httpAddr + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var p struct {
		Cells struct {
			Total, Completed, Pending int
		} `json:"cells"`
		ETASeconds float64 `json:"eta_seconds"`
		Done       bool    `json:"done"`
	}
	err = json.NewDecoder(resp.Body).Decode(&p)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if p.Cells.Total != 1 || p.Cells.Pending != 1 || p.Done || p.ETASeconds != -1 {
		t.Errorf("fresh /progress: %+v", p)
	}

	// -status renders the same report through the CLI.
	var statusOut, statusErr bytes.Buffer
	if err := run(context.Background(), []string{"-status", httpAddr}, &statusOut, &statusErr); err != nil {
		t.Fatalf("-status: %v (stderr %q)", err, statusErr.String())
	}
	for _, want := range []string{"running", "cells: 0/1 completed", "eta unknown", "workers: 0"} {
		if !strings.Contains(statusOut.String(), want) {
			t.Errorf("-status output missing %q: %q", want, statusOut.String())
		}
	}

	// Finish the sweep so the coordinator exits cleanly.
	var workerOut, workerErr bytes.Buffer
	if err := run(context.Background(), []string{"-worker", leaseAddr, "-quiet"}, &workerOut, &workerErr); err != nil {
		t.Fatalf("worker: %v (stderr %q)", err, workerErr.String())
	}
	if err := <-coordDone; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if coordOut.Len() == 0 {
		t.Error("coordinator produced no output")
	}
}

// TestStatusBadAddress: -status against nothing is a plain error, not a
// hang.
func TestStatusBadAddress(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here any more
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-status", addr}, &stdout, &stderr); err == nil {
		t.Error("-status against a dead address succeeded")
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
