// Command ripki-worldgen generates a synthetic web ecosystem and writes
// its artifacts to disk in the formats the real study consumed:
//
//	alexa.csv       ranked domain list ("rank,domain")
//	rib.mrt         collector routing table (MRT TABLE_DUMP_V2)
//	vrps.csv        validated ROA payloads ("prefix,maxLength,ASN")
//	asregistry.tsv  AS assignment list for keyword spotting
//	zones.tsv       every DNS record ("name type value")
//
// Other tools (ripki-measure, ripki-rtrd, ripki-validate, ripki-dnsd)
// can either regenerate the same world from -seed/-domains or load
// these files.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ripki/internal/webworld"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ripki-worldgen: ")
	var (
		domains = flag.Int("domains", 100000, "size of the ranked domain list")
		seed    = flag.Int64("seed", 1, "world generation seed")
		shards  = flag.Int("shards", 0, "generation parallelism (0 = GOMAXPROCS; output is identical at any value)")
		out     = flag.String("out", "world", "output directory")
		zones   = flag.Bool("zones", false, "also dump every DNS record (large)")
		rpkiDir = flag.Bool("rpki", false, "also write the full RPKI repository tree (DER publication points)")
	)
	flag.Parse()

	w, err := webworld.Generate(webworld.Config{Seed: *seed, Domains: *domains, Shards: *shards})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	write := func(name string, fn func(f *os.File) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			log.Fatalf("writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	write("alexa.csv", func(f *os.File) error { return w.List.WriteCSV(f) })
	write("rib.mrt", func(f *os.File) error {
		return w.RIB.DumpMRT(f, w.RIB.Peers()[0].BGPID, "rrc-ripki", w.Cfg.Clock)
	})
	res := w.Repo.Validate(w.MeasureTime())
	if len(res.Problems) != 0 {
		log.Fatalf("RPKI validation produced %d problems; first: %v", len(res.Problems), res.Problems[0])
	}
	write("vrps.csv", func(f *os.File) error { return res.VRPs.WriteCSV(f) })
	write("asregistry.tsv", func(f *os.File) error {
		bw := bufio.NewWriter(f)
		fmt.Fprintln(bw, "asn\tname\torg")
		for _, e := range w.ASRegistry {
			fmt.Fprintf(bw, "%d\t%s\t%s\n", e.ASN, e.Name, e.Org)
		}
		return bw.Flush()
	})
	if *rpkiDir {
		dir := filepath.Join(*out, "rpki")
		if err := w.Repo.WriteTo(dir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (publication-point tree)\n", dir)
	}
	if *zones {
		write("zones.tsv", func(f *os.File) error { return w.Registry.WriteZoneTSV(f) })
	}
	fmt.Printf("world: %d domains, %d orgs, %d prefixes (%d signed), %d VRPs, %d RIB prefixes\n",
		w.Cfg.Domains, len(w.Orgs), w.Stats.PrefixesTotal, w.Stats.PrefixesSigned, res.VRPs.Len(), w.RIB.Len())
}
