package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestConfigureWiresTheService builds a small daemon and drives its
// handler in-process: the world-backed snapshot must be live and every
// endpoint reachable.
func TestConfigureWiresTheService(t *testing.T) {
	var stderr bytes.Buffer
	d, err := configure([]string{"-domains", "1500", "-seed", "1"}, &stderr)
	if err != nil {
		t.Fatalf("configure: %v (stderr: %s)", err, stderr.String())
	}
	if len(d.sources) != 0 {
		t.Fatalf("no sources requested, got %d", len(d.sources))
	}
	if !strings.Contains(d.banner, "source=world") {
		t.Fatalf("banner: %s", d.banner)
	}
	for _, path := range []string{"/healthz", "/v1/snapshot", "/v1/domains?limit=1", "/metrics"} {
		rec := httptest.NewRecorder()
		d.handler.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, rec.Code, rec.Body.String())
		}
	}

	// A domain from the listing answers on the domain endpoint.
	rec := httptest.NewRecorder()
	d.handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/domains?limit=1", nil))
	var listing struct {
		Domains []struct {
			Name string `json:"name"`
		} `json:"domains"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil || len(listing.Domains) == 0 {
		t.Fatalf("domains listing: %v %s", err, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	d.handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/domain/"+listing.Domains[0].Name, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("domain endpoint: %d: %s", rec.Code, rec.Body.String())
	}
}

// TestConfigurePprofGate: the profile endpoints are opt-in, and the
// service endpoints keep answering when they're mounted.
func TestConfigurePprofGate(t *testing.T) {
	var stderr bytes.Buffer
	d, err := configure([]string{"-domains", "1500"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	d.handler.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code == http.StatusOK {
		t.Fatal("pprof served without opt-in")
	}

	d, err = configure([]string{"-domains", "1500", "-pprof"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.banner, "pprof") {
		t.Errorf("banner doesn't announce pprof: %q", d.banner)
	}
	for path, want := range map[string]int{
		"/debug/pprof/": http.StatusOK,
		"/healthz":      http.StatusOK,
		"/metrics":      http.StatusOK,
	} {
		rec := httptest.NewRecorder()
		d.handler.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != want {
			t.Errorf("GET %s with -pprof: %d, want %d", path, rec.Code, want)
		}
	}
}

// TestConfigureScenarioSource wires the sim source without running it.
func TestConfigureScenarioSource(t *testing.T) {
	var stderr bytes.Buffer
	d, err := configure([]string{"-domains", "1500", "-scenario", "roa-churn", "-param", "rate=2"}, &stderr)
	if err != nil {
		t.Fatalf("configure: %v (stderr: %s)", err, stderr.String())
	}
	if len(d.sources) != 1 || !strings.Contains(d.banner, "scenario roa-churn") {
		t.Fatalf("scenario source not wired: %d sources, banner %q", len(d.sources), d.banner)
	}
}

// TestExitCodeConventions: -h is a clean exit, usage errors are
// errFlagParse (exit 2 in main), conflicting sources are usage errors.
func TestExitCodeConventions(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-h"}, &out, &errBuf); err != nil {
		t.Fatalf("-h: %v", err)
	}
	if !strings.Contains(errBuf.String(), "-listen") {
		t.Fatalf("-h printed no usage: %s", errBuf.String())
	}
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"stray-arg"},
		{"-rtr", "127.0.0.1:1", "-scenario", "roa-churn"},
	} {
		errBuf.Reset()
		if err := run(args, &out, &errBuf); !errors.Is(err, errFlagParse) {
			t.Fatalf("args %v: err %v, want errFlagParse", args, err)
		}
	}
	// An unknown scenario is caught when the source starts; configure
	// itself validates the registry through the sim package.
	errBuf.Reset()
	if _, err := configure([]string{"-vrps", "/no/such/file.csv", "-domains", "1500"}, &errBuf); err == nil {
		t.Fatal("missing VRP file accepted")
	}
}

// TestConfigureComposedScenario: the -scenario flag accepts "+"-joined
// compositions with routed per-component params, and rejects params
// addressing a non-member component at configure time.
func TestConfigureComposedScenario(t *testing.T) {
	var stderr bytes.Buffer
	d, err := configure([]string{
		"-domains", "1500", "-scenario", "hijack-window+roa-churn",
		"-param", "roa-churn.issue=2",
	}, &stderr)
	if err != nil {
		t.Fatalf("configure: %v (stderr: %s)", err, stderr.String())
	}
	if len(d.sources) != 1 || !strings.Contains(d.banner, "scenario hijack-window+roa-churn") {
		t.Fatalf("composed scenario source not wired: %d sources, banner %q", len(d.sources), d.banner)
	}
	if _, err := configure([]string{
		"-domains", "1500", "-scenario", "hijack-window+roa-churn",
		"-param", "rp-lag.slow_ticks=5",
	}, &stderr); err == nil {
		t.Fatal("param addressing a non-member component accepted")
	}
}
