// Command ripki-served is the always-on origin-validation and
// web-exposure query service: a generated web ecosystem's domain table
// plus a live VRP snapshot, served over HTTP with lock-free reads.
//
//	ripki-served -domains 20000 -seed 1                 # serve the world's own RPKI state
//	ripki-served -vrps world/vrps.csv                   # serve a CSV export
//	ripki-served -rtr 127.0.0.1:8282                    # follow a live RTR cache
//	ripki-served -scenario roa-churn -sim-interval 1s   # drive updates from a scenario
//	ripki-served -scenario hijack-window+rp-lag         # replay a compound incident live
//
// Endpoints: POST/GET /v1/validate, GET /v1/domain/{name},
// GET /v1/domains, GET /v1/snapshot, GET /v1/events, GET /healthz,
// GET /metrics. See docs/serve.md.
//
// Exit codes: 0 on clean shutdown (SIGINT/SIGTERM) and for -h; 2 on
// usage errors; 1 on runtime failures.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ripki/internal/obs"
	"ripki/internal/rpki/vrp"
	"ripki/internal/serve"
	"ripki/internal/sim"
	"ripki/internal/webworld"
)

// errFlagParse marks a flag-parsing failure the FlagSet has already
// reported to stderr, so main exits 2 without printing it twice.
var errFlagParse = errors.New("flag parsing failed")

// simParams collects repeatable -param key=value scenario parameters.
type simParams map[string]string

func (p simParams) String() string { return fmt.Sprint(map[string]string(p)) }

func (p simParams) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("want key=value, got %q", s)
	}
	p[k] = v
	return nil
}

// daemon is a fully configured service: everything run needs except
// the listener, so tests can drive the handler in-process.
type daemon struct {
	svc     *serve.Service
	handler http.Handler
	listen  string
	banner  string
	// sources are the update loops to run alongside the HTTP server.
	sources []func(context.Context) error
}

// configure parses flags and builds the service: generate the world,
// build the domain exposure table, publish the initial snapshot, and
// wire the requested update sources.
func configure(args []string, stderr io.Writer) (*daemon, error) {
	params := simParams{}
	fs := flag.NewFlagSet("ripki-served", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen      = fs.String("listen", "127.0.0.1:8480", "HTTP listen address")
		domains     = fs.Int("domains", 20000, "world size (domain exposure table)")
		seed        = fs.Int64("seed", 1, "world generation seed")
		shards      = fs.Int("shards", 0, "world generation parallelism (0 = GOMAXPROCS; output is identical at any value)")
		vrpFile     = fs.String("vrps", "", "serve VRPs from a CSV export instead of the world's own RPKI state")
		rtrAddr     = fs.String("rtr", "", "follow a live RTR cache at host:port (replaces the snapshot on every notify)")
		scenario    = fs.String("scenario", "", `drive updates from a sim scenario or a "+"-joined composition ("hijack-window+rp-lag"); registered: `+strings.Join(sim.Names(), ", "))
		simInterval = fs.Duration("sim-interval", time.Second, "wall-clock time per virtual scenario tick")
		simTick     = fs.Duration("sim-tick", 30*time.Second, "virtual tick granularity of the scenario")
		simDuration = fs.Duration("sim-duration", 30*time.Minute, "virtual horizon of the scenario")
		pprofFlag   = fs.Bool("pprof", false, "also serve the runtime profiles under /debug/pprof/ on the main listener")
		maxStale    = fs.Duration("health-max-staleness", 0, "answer 503 (degraded) on /healthz when a live update source has not published for this long; 0 disables")
	)
	fs.Var(params, "param", "scenario parameter key=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil, flag.ErrHelp
		}
		return nil, errFlagParse
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "unexpected arguments: %v\n", fs.Args())
		return nil, errFlagParse
	}
	if *rtrAddr != "" && *scenario != "" {
		fmt.Fprintln(stderr, "-rtr and -scenario are mutually exclusive update sources")
		return nil, errFlagParse
	}
	if *scenario != "" {
		// Fail on an unknown scenario now, not when the source starts.
		if _, err := sim.NewScenario(*scenario, sim.Params(params)); err != nil {
			return nil, err
		}
	}

	world, err := webworld.Generate(webworld.Config{Seed: *seed, Domains: *domains, Shards: *shards})
	if err != nil {
		return nil, err
	}
	table, err := serve.BuildDomainTable(world)
	if err != nil {
		return nil, err
	}
	svc := serve.New(table)
	svc.SetHealthMaxStaleness(*maxStale)

	// The initial snapshot: a CSV export if given, the world's own
	// validated payloads otherwise. An RTR-fed service may skip both
	// and start "unhealthy" until its first sync — but seeding it keeps
	// /healthz green from the first request.
	source := "world"
	var initial *vrp.Set
	if *vrpFile != "" {
		f, err := os.Open(*vrpFile)
		if err != nil {
			return nil, err
		}
		initial, err = vrp.ReadCSV(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		source = "csv"
	} else {
		initial = world.Validation().VRPs
	}
	if _, err := svc.PublishSet(initial, source, 0); err != nil {
		return nil, err
	}

	handler := svc.Handler()
	if *pprofFlag {
		// Opt-in only: the profile endpoints expose internals a fleet
		// deployment would not want on its query port by default.
		mux := http.NewServeMux()
		obs.RegisterPprof(mux)
		mux.Handle("/", handler)
		handler = mux
	}
	d := &daemon{
		svc:     svc,
		handler: handler,
		listen:  *listen,
		banner: fmt.Sprintf("serving %d domains (%.1f MB table), %d VRPs (source=%s)",
			table.Len(), float64(table.MemoryFootprint())/1e6, initial.Len(), source),
	}
	if *pprofFlag {
		d.banner += ", pprof on /debug/pprof/"
	}
	if *rtrAddr != "" {
		addr := *rtrAddr
		d.banner += ", following RTR cache " + addr
		d.sources = append(d.sources, func(ctx context.Context) error {
			return d.svc.RunRTR(ctx, addr)
		})
	}
	if *scenario != "" {
		cfg := sim.Config{
			Scenario: *scenario,
			Params:   sim.Params(params),
			Seed:     *seed,
			Domains:  *domains,
			Tick:     *simTick,
			Duration: *simDuration,
			World:    world,
		}
		interval := *simInterval
		d.banner += ", scenario " + *scenario
		d.sources = append(d.sources, func(ctx context.Context) error {
			return d.svc.RunSim(ctx, cfg, interval)
		})
	}
	return d, nil
}

// run is the whole command, testable.
func run(args []string, stdout, stderr io.Writer) error {
	d, err := configure(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return nil // -h is a successful exit
	}
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", d.listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "ripki-served: %s on http://%s\n", d.banner, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for _, src := range d.sources {
		src := src
		go func() {
			if err := src(ctx); err != nil {
				// A failed source is not fatal: the service keeps
				// answering from its last published snapshot.
				fmt.Fprintf(stderr, "ripki-served: update source: %v\n", err)
			}
		}()
	}

	srv := &http.Server{Handler: d.handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutdownCtx)
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errFlagParse) {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "ripki-served: %v\n", err)
		os.Exit(1)
	}
}
