// Command ripki-sim runs a discrete-event scenario over a synthetic web
// ecosystem and emits the recorded time series: the world's RPKI
// exposure, per relying-party cache state, and hijack success, tick by
// tick. Same seed + flags ⇒ byte-identical output.
//
// Scenarios compose: "a+b" runs both event streams in one world, with
// "-param a.key=value" routed to that component only.
//
//	ripki-sim -scenario hijack-window -seed 1
//	ripki-sim -scenario rp-lag -param slow_ticks=30 -format json
//	ripki-sim -scenario cdn-migration -param from=akamai -param to=internap
//	ripki-sim -scenario hijack-window+rp-lag -param rp-lag.issue=5
//	ripki-sim -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"ripki"
)

// paramFlag collects repeatable -param key=value pairs.
type paramFlag map[string]string

func (p paramFlag) String() string { return fmt.Sprint(map[string]string(p)) }

func (p paramFlag) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("want key=value, got %q", s)
	}
	p[k] = v
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ripki-sim: ")
	params := paramFlag{}
	var (
		// The usage text enumerates the live registry, so it can never
		// drift from the actual scenario library (ripki-sweep shares it).
		scenario = flag.String("scenario", "hijack-window",
			`scenario to run, or a "+"-joined composition ("roa-churn+rp-lag") running every component's events in one world; registered: `+
				strings.Join(ripki.Scenarios(), ", "))
		list          = flag.Bool("list", false, "list registered scenarios and the composition syntax, then exit")
		seed          = flag.Int64("seed", 1, "world + scenario seed")
		domains       = flag.Int("domains", 20000, "size of the generated world")
		tick          = flag.Duration("tick", 30*time.Second, "virtual clock granularity")
		duration      = flag.Duration("duration", 30*time.Minute, "simulated horizon")
		sampleEvery   = flag.Int("sample-every", 2, "probe cadence in ticks")
		sampleDomains = flag.Int("sample-domains", 1500, "probe's stratified domain sample size")
		format        = flag.String("format", "tsv", `output format: "tsv" or "json"`)
		incremental   = flag.Bool("incremental", true, "incremental probe measurement and delta revalidation; -incremental=false forces full recomputation (output is byte-identical either way)")
		narrate       = flag.Bool("narrate", false, "narrate bus events to stderr while running")
		eventsPath    = flag.String("events", "", "write the typed incident stream (hijacks, ROA moves, outages, RP lag episodes) to this file as JSONL (virtual-clock timestamps; byte-identical for the same seed and flags)")
		tracePath     = flag.String("trace", "", "write a structured trace of the run to this file (virtual-clock timestamps; byte-identical for the same seed and flags)")
		traceFormat   = flag.String("trace-format", "jsonl", `trace export format: "jsonl" (one event per line) or "chrome" (chrome://tracing / Perfetto)`)
	)
	flag.Var(params, "param", `scenario parameter key=value (repeatable); in a composition, "component.key=value" targets one component`)
	flag.Parse()

	if *list {
		for _, name := range ripki.Scenarios() {
			fmt.Printf("%-20s %s\n", name, ripki.DescribeScenario(name))
		}
		fmt.Println("\ncompose with \"+\": any a+b[+c...] runs every component's event stream in one world")
		fmt.Println("(per-component params: -param component.key=value; see docs/sim.md)")
		return
	}

	sim, err := ripki.NewSimulation(ripki.SimConfig{
		Scenario:           *scenario,
		Params:             ripki.SimParams(params),
		Seed:               *seed,
		Domains:            *domains,
		Tick:               *tick,
		Duration:           *duration,
		SampleEvery:        *sampleEvery,
		SampleDomains:      *sampleDomains,
		DisableIncremental: !*incremental,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()
	if *narrate {
		sim.Bus.SubscribeAll(func(e ripki.SimEvent) { fmt.Fprintln(os.Stderr, e) })
	}
	var incidents *ripki.IncidentLog
	if *eventsPath != "" {
		incidents = &ripki.IncidentLog{}
		sim.AttachIncidents(incidents.Add)
	}
	var trace *ripki.Trace
	if *tracePath != "" {
		trace = ripki.NewTrace()
		sim.AttachTrace(trace)
	}
	series, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	if incidents != nil {
		f, err := os.Create(*eventsPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := incidents.WriteJSONL(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if trace != nil {
		// Close first: it spans out any hijacks still active at the
		// horizon, completing the trace.
		sim.Close()
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteFormat(f, *traceFormat); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	switch *format {
	case "tsv":
		err = series.WriteTSV(os.Stdout)
	case "json":
		err = series.WriteJSON(os.Stdout)
	default:
		log.Fatalf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
}
