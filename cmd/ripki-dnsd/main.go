// Command ripki-dnsd serves a generated world's DNS zones over UDP, so
// the measurement pipeline (or plain dig/host) can resolve the
// synthetic web through a real resolver hop — one of the "several
// public resolvers" of the paper's methodology.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"ripki/internal/dns"
	"ripki/internal/webworld"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ripki-dnsd: ")
	var (
		listen   = flag.String("listen", "127.0.0.1:5354", "UDP listen address")
		domains  = flag.Int("domains", 20000, "world size")
		seed     = flag.Int64("seed", 1, "world generation seed")
		zoneFile = flag.String("zones", "", "serve a zones.tsv dump instead of generating a world")
		verbose  = flag.Bool("v", false, "log queries")
	)
	flag.Parse()

	var registry *dns.Registry
	if *zoneFile != "" {
		f, err := os.Open(*zoneFile)
		if err != nil {
			log.Fatal(err)
		}
		registry, err = dns.LoadZoneTSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		w, err := webworld.Generate(webworld.Config{Seed: *seed, Domains: *domains})
		if err != nil {
			log.Fatal(err)
		}
		registry = w.Registry
	}
	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d names on %s\n", registry.Len(), conn.LocalAddr())
	srv := dns.NewServer(registry)
	if *verbose {
		srv.Logf = log.Printf
	}
	if err := srv.Serve(conn); err != nil {
		log.Fatal(err)
	}
}
