package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeVRPs writes a small VRP CSV fixture: 10.0.0.0/16-24 => AS64500.
func writeVRPs(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "vrps.csv")
	csv := "prefix,maxLength,ASN\n10.0.0.0/16,24,AS64500\n192.0.2.0/24,24,AS64501\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSingleRouteModes(t *testing.T) {
	vrps := writeVRPs(t)
	var out, errBuf bytes.Buffer

	// Valid route: exit 0, covering VRP printed.
	err := run([]string{"-vrps", vrps, "10.0.0.0/16", "64500"}, strings.NewReader(""), &out, &errBuf)
	if err != nil {
		t.Fatalf("valid route: %v", err)
	}
	if !strings.Contains(out.String(), "valid") || !strings.Contains(out.String(), "covered by") {
		t.Fatalf("output: %s", out.String())
	}

	// Invalid route found → errInvalidRoute (exit 1).
	out.Reset()
	err = run([]string{"-vrps", vrps, "10.0.0.0/16", "64999"}, strings.NewReader(""), &out, &errBuf)
	if !errors.Is(err, errInvalidRoute) {
		t.Fatalf("invalid route: err = %v, want errInvalidRoute", err)
	}

	// "AS" prefix accepted on the origin.
	out.Reset()
	if err := run([]string{"-vrps", vrps, "10.0.0.0/16", "AS64500"}, strings.NewReader(""), &out, &errBuf); err != nil {
		t.Fatalf("AS-prefixed origin: %v", err)
	}
}

func TestBatchMode(t *testing.T) {
	vrps := writeVRPs(t)
	stdin := strings.NewReader(`
# comment and blank lines are skipped

10.0.0.0/16 64500
10.0.0.0/16 64999
203.0.113.0/24 64500
`)
	var out, errBuf bytes.Buffer
	err := run([]string{"-vrps", vrps, "-batch"}, stdin, &out, &errBuf)
	if !errors.Is(err, errInvalidRoute) {
		t.Fatalf("batch with an invalid route: err = %v, want errInvalidRoute", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header + 3 rows, got %d lines:\n%s", len(lines), out.String())
	}
	if lines[0] != "prefix\tasn\tstate\tcovering" {
		t.Fatalf("header: %q", lines[0])
	}
	for i, want := range []struct{ state, covering string }{
		{"valid", "10.0.0.0/16-24=>AS64500"},
		{"invalid", "10.0.0.0/16-24=>AS64500"},
		{"notfound", "-"},
	} {
		cols := strings.Split(lines[i+1], "\t")
		if len(cols) != 4 || cols[2] != want.state || cols[3] != want.covering {
			t.Errorf("row %d = %q, want state %s covering %s", i, lines[i+1], want.state, want.covering)
		}
	}

	// An all-clean batch exits 0.
	out.Reset()
	if err := run([]string{"-vrps", vrps, "-batch"}, strings.NewReader("10.0.0.0/16 64500\n"), &out, &errBuf); err != nil {
		t.Fatalf("clean batch: %v", err)
	}

	// A malformed line is a runtime error naming the line.
	err = run([]string{"-vrps", vrps, "-batch"}, strings.NewReader("banana\n"), &out, &errBuf)
	if err == nil || errors.Is(err, errFlagParse) || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("malformed line: %v", err)
	}
}

// TestUsageErrors: every usage mistake is errFlagParse (exit 2), and
// -h is a clean exit.
func TestUsageErrors(t *testing.T) {
	vrps := writeVRPs(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-h"}, strings.NewReader(""), &out, &errBuf); err != nil {
		t.Fatalf("-h: %v", err)
	}
	if !strings.Contains(errBuf.String(), "-batch") {
		t.Fatalf("-h printed no usage: %s", errBuf.String())
	}
	for _, args := range [][]string{
		{},                                 // no source
		{"-vrps", vrps},                    // no routes
		{"-vrps", vrps, "10.0.0.0/16"},     // odd argument count
		{"-vrps", vrps, "banana", "64500"}, // bad prefix operand
		{"-vrps", vrps, "-batch", "10.0.0.0/16", "64500"}, // batch + args
		{"-no-such-flag"},
	} {
		errBuf.Reset()
		if err := run(args, strings.NewReader(""), &out, &errBuf); !errors.Is(err, errFlagParse) {
			t.Errorf("args %v: err = %v, want errFlagParse", args, err)
		}
	}
	// A missing VRP file is a runtime error (exit 1), not usage.
	if err := run([]string{"-vrps", "/no/such.csv", "10.0.0.0/16", "1"}, strings.NewReader(""), &out, &errBuf); err == nil || errors.Is(err, errFlagParse) {
		t.Errorf("missing file: %v", err)
	}
}
