// Command ripki-validate performs one-shot RFC 6811 origin validation:
// given a VRP source and route(s), it prints valid / invalid / not
// found with the covering VRPs, like an origin-validation looking
// glass.
//
//	ripki-validate -vrps world/vrps.csv 193.0.6.0/24 3333
//	ripki-validate -rtr 127.0.0.1:8282 193.0.6.0/24 3333
//	ripki-validate -vrps world/vrps.csv -batch < routes.txt
//
// In -batch mode routes come from stdin, one "prefix asn" pair per
// line (blank lines and #-comments skipped), and the output is TSV:
// prefix, asn, state, covering VRPs (";"-joined, "-" when none).
//
// Exit codes follow the ripki-sweep convention: 0 on success (-h
// included), 1 when any route validated invalid or on runtime errors,
// 2 on usage errors.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strconv"
	"strings"

	"ripki/internal/rpki/vrp"
	"ripki/internal/rtr"
)

// errFlagParse marks a usage failure already reported to stderr; main
// exits 2 without printing it twice.
var errFlagParse = errors.New("flag parsing failed")

// errInvalidRoute marks a successful run that found at least one
// invalid route; main exits 1 silently (the states are the output).
var errInvalidRoute = errors.New("invalid route found")

// route is one (prefix, origin AS) pair to classify.
type route struct {
	prefix netip.Prefix
	asn    uint32
}

// parseRoute parses the "prefix asn" pair, accepting an "AS" prefix on
// the ASN.
func parseRoute(prefixText, asnText string) (route, error) {
	p, err := netip.ParsePrefix(prefixText)
	if err != nil {
		return route{}, fmt.Errorf("bad prefix %q: %v", prefixText, err)
	}
	asn, err := strconv.ParseUint(strings.TrimPrefix(strings.ToUpper(asnText), "AS"), 10, 32)
	if err != nil {
		return route{}, fmt.Errorf("bad ASN %q: %v", asnText, err)
	}
	return route{prefix: p, asn: uint32(asn)}, nil
}

// loadSet builds the VRP set from the chosen source.
func loadSet(vrpFile, rtrAddr string) (*vrp.Set, error) {
	switch {
	case vrpFile != "":
		f, err := os.Open(vrpFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return vrp.ReadCSV(f)
	case rtrAddr != "":
		c, err := rtr.Dial(rtrAddr)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		if err := c.Reset(); err != nil {
			return nil, err
		}
		return c.Set(), nil
	default:
		return nil, nil
	}
}

// run is the whole command, testable: routes in via argv or stdin,
// results out via the writers.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ripki-validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		vrpFile = fs.String("vrps", "", "VRP CSV file")
		rtrAddr = fs.String("rtr", "", "RTR cache address to sync from")
		batch   = fs.Bool("batch", false, `read "prefix asn" lines from stdin and emit TSV`)
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: ripki-validate (-vrps file | -rtr addr) <prefix> <asn> [<prefix> <asn> ...]")
		fmt.Fprintln(stderr, "       ripki-validate (-vrps file | -rtr addr) -batch < routes.txt")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h is a successful exit
		}
		return errFlagParse
	}
	if *vrpFile == "" && *rtrAddr == "" {
		fmt.Fprintln(stderr, "need -vrps or -rtr")
		fs.Usage()
		return errFlagParse
	}
	argv := fs.Args()
	if *batch && len(argv) != 0 {
		fmt.Fprintln(stderr, "-batch takes routes on stdin, not arguments")
		return errFlagParse
	}
	if !*batch && (len(argv) == 0 || len(argv)%2 != 0) {
		fs.Usage()
		return errFlagParse
	}

	// Parse argv routes before loading the set, so a typo'd route is a
	// usage error (exit 2) rather than a late runtime failure.
	var routes []route
	if !*batch {
		for i := 0; i < len(argv); i += 2 {
			r, err := parseRoute(argv[i], argv[i+1])
			if err != nil {
				fmt.Fprintln(stderr, err)
				return errFlagParse
			}
			routes = append(routes, r)
		}
	}

	set, err := loadSet(*vrpFile, *rtrAddr)
	if err != nil {
		return err
	}

	if *batch {
		return runBatch(set, stdin, stdout)
	}
	anyInvalid := false
	for _, r := range routes {
		state, covering := set.ValidateExplain(r.prefix, r.asn)
		fmt.Fprintf(stdout, "%s AS%d: %s\n", r.prefix, r.asn, state)
		for _, v := range covering {
			fmt.Fprintf(stdout, "  covered by %s\n", v)
		}
		if state == vrp.Invalid {
			anyInvalid = true
		}
	}
	if anyInvalid {
		return errInvalidRoute
	}
	return nil
}

// runBatch streams "prefix asn" lines into TSV verdicts.
func runBatch(set *vrp.Set, stdin io.Reader, stdout io.Writer) error {
	bw := bufio.NewWriter(stdout)
	fmt.Fprintln(bw, "prefix\tasn\tstate\tcovering")
	sc := bufio.NewScanner(stdin)
	lineNo := 0
	anyInvalid := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("stdin line %d: want \"prefix asn\", got %q", lineNo, line)
		}
		r, err := parseRoute(fields[0], fields[1])
		if err != nil {
			return fmt.Errorf("stdin line %d: %v", lineNo, err)
		}
		state, covering := set.ValidateExplain(r.prefix, r.asn)
		cov := "-"
		if len(covering) > 0 {
			parts := make([]string, len(covering))
			for i, v := range covering {
				parts[i] = fmt.Sprintf("%s-%d=>AS%d", v.Prefix, v.MaxLength, v.ASN)
			}
			cov = strings.Join(parts, ";")
		}
		token := strings.ReplaceAll(state.String(), " ", "") // "not found" → "notfound"
		fmt.Fprintf(bw, "%s\t%d\t%s\t%s\n", r.prefix, r.asn, token, cov)
		if state == vrp.Invalid {
			anyInvalid = true
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading stdin: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if anyInvalid {
		return errInvalidRoute
	}
	return nil
}

func main() {
	err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, errFlagParse):
		os.Exit(2)
	case errors.Is(err, errInvalidRoute):
		os.Exit(1)
	default:
		fmt.Fprintf(os.Stderr, "ripki-validate: %v\n", err)
		os.Exit(1)
	}
}
