// Command ripki-validate performs one-shot RFC 6811 origin validation:
// given a VRP source and route(s), it prints valid / invalid / not
// found with the covering VRPs, like an origin-validation looking
// glass.
//
//	ripki-validate -vrps world/vrps.csv 193.0.6.0/24 3333
//	ripki-validate -rtr 127.0.0.1:8282 193.0.6.0/24 3333
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"strconv"
	"strings"

	"ripki/internal/rpki/vrp"
	"ripki/internal/rtr"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ripki-validate: ")
	var (
		vrpFile = flag.String("vrps", "", "VRP CSV file")
		rtrAddr = flag.String("rtr", "", "RTR cache address to sync from")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 || len(args)%2 != 0 {
		log.Fatal("usage: ripki-validate (-vrps file | -rtr addr) <prefix> <asn> [<prefix> <asn> ...]")
	}

	var set *vrp.Set
	switch {
	case *vrpFile != "":
		f, err := os.Open(*vrpFile)
		if err != nil {
			log.Fatal(err)
		}
		set, err = vrp.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *rtrAddr != "":
		c, err := rtr.Dial(*rtrAddr)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Reset(); err != nil {
			log.Fatal(err)
		}
		set = c.Set()
		c.Close()
	default:
		log.Fatal("need -vrps or -rtr")
	}

	exit := 0
	for i := 0; i < len(args); i += 2 {
		prefix, err := netip.ParsePrefix(args[i])
		if err != nil {
			log.Fatalf("bad prefix %q: %v", args[i], err)
		}
		asnText := strings.TrimPrefix(strings.ToUpper(args[i+1]), "AS")
		asn, err := strconv.ParseUint(asnText, 10, 32)
		if err != nil {
			log.Fatalf("bad ASN %q: %v", args[i+1], err)
		}
		state, covering := set.ValidateExplain(prefix, uint32(asn))
		fmt.Printf("%s AS%d: %s\n", prefix, asn, state)
		for _, v := range covering {
			fmt.Printf("  covered by %s\n", v)
		}
		if state == vrp.Invalid {
			exit = 2
		}
	}
	os.Exit(exit)
}
