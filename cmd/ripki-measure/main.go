// Command ripki-measure runs the paper's measurement methodology over a
// generated world and prints any of the paper's figures and tables as
// TSV (or a rough terminal plot with -plot).
//
//	ripki-measure -domains 100000 -fig 2
//	ripki-measure -domains 100000 -table1
//	ripki-measure -domains 100000 -cdnstudy
//	ripki-measure -domains 100000 -all > results.tsv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ripki"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ripki-measure: ")
	var (
		domains  = flag.Int("domains", 100000, "size of the ranked domain list")
		seed     = flag.Int64("seed", 1, "world generation seed")
		bin      = flag.Int("bin", 0, "bin width (default: domains/100, the paper's 10k-of-1M ratio)")
		variant  = flag.String("variant", "www", `name variant: "www" or "apex"`)
		fig      = flag.Int("fig", 0, "print figure N (1-4)")
		table1   = flag.Bool("table1", false, "print Table 1")
		topN     = flag.Int("top", 10, "rows for Table 1")
		cdnstudy = flag.Bool("cdnstudy", false, "print the §4.2 CDN study")
		exposure = flag.Bool("exposure", false, "print the §5.2 business-relation exposure analysis")
		dnssec   = flag.Bool("dnssec", false, "print the DNSSEC-vs-RPKI extension figure")
		summary  = flag.Bool("summary", false, "print dataset headline counts")
		all      = flag.Bool("all", false, "print everything")
		dump     = flag.String("dump", "", "write the full per-domain dataset to this TSV file (the paper's data release)")
		plot     = flag.Bool("plot", false, "render figures as terminal plots instead of TSV")
	)
	flag.Parse()

	v := ripki.VariantWWW
	switch *variant {
	case "www":
	case "apex", "w/o www":
		v = ripki.VariantApex
	default:
		log.Fatalf("unknown variant %q", *variant)
	}
	binWidth := *bin
	if binWidth == 0 {
		binWidth = *domains / 100
		if binWidth == 0 {
			binWidth = 1
		}
	}

	study, err := ripki.NewStudy(ripki.StudyConfig{
		Domains:  *domains,
		Seed:     *seed,
		BinWidth: binWidth,
		DNSSEC:   *dnssec || *all,
	})
	if err != nil {
		log.Fatal(err)
	}

	emitFig := func(f *ripki.Figure) {
		if *plot {
			fmt.Print(f.ASCIIPlot(72, 16))
			return
		}
		if err := f.WriteTSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	emitTable := func(t *ripki.Table) {
		if *plot {
			if err := t.WriteAligned(os.Stdout); err != nil {
				log.Fatal(err)
			}
		} else if err := t.WriteTSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	printed := false
	if *all || *summary {
		emitTable(study.Summary())
		printed = true
	}
	if *all || *fig == 1 {
		emitFig(study.Figure1())
		printed = true
	}
	if *all || *fig == 2 {
		emitFig(study.Figure2(v))
		printed = true
	}
	if *all || *fig == 3 {
		emitFig(study.Figure3())
		printed = true
	}
	if *all || *fig == 4 {
		emitFig(study.Figure4(v))
		printed = true
	}
	if *all || *table1 {
		emitTable(study.Table1(*topN))
		printed = true
	}
	if *all || *cdnstudy {
		emitTable(ripki.CDNStudyTable(study.CDNStudy()))
		printed = true
	}
	if *all || *exposure {
		emitTable(ripki.ExposureTable(study.ExposedRelations()))
		printed = true
	}
	if *all || *dnssec {
		emitFig(study.FigureDNSSEC(v))
		printed = true
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			log.Fatal(err)
		}
		if err := study.Dataset.WriteTSV(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d domains)\n", *dump, study.Dataset.Totals.Domains)
		printed = true
	}
	if !printed {
		log.Fatal("nothing to do: pass -fig N, -table1, -cdnstudy, -exposure, -summary, -dump FILE, or -all")
	}
}
